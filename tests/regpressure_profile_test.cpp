#include <gtest/gtest.h>

#include "sched/postpass.hpp"
#include "sched/regpressure.hpp"
#include "spmt/profile.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms {
namespace {

// ---------------- Register-pressure-aware scheduling ------------------

TEST(RegPressure, PressureIsMaxLivePlusCopies) {
  machine::MachineModel mach;
  const ir::Loop loop = test::tiny_chain();
  const auto r = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const sched::CommPlan plan = sched::plan_communication(r->schedule);
  EXPECT_EQ(sched::register_pressure(r->schedule),
            r->schedule.max_live() + plan.copies_per_iter);
}

TEST(RegPressure, GenerousLimitIsFreeLunch) {
  machine::MachineModel mach;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto plain = sched::sms_schedule(loop, fm);
  const auto limited = sched::sms_schedule_reglimited(loop, fm, 1024);
  ASSERT_TRUE(plain.has_value() && limited.has_value());
  EXPECT_EQ(limited->retries, 0);
  EXPECT_EQ(limited->schedule.ii(), plain->schedule.ii());
}

TEST(RegPressure, TightLimitForcesLargerII) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  int raised = 0;
  for (std::uint64_t seed = 800; seed < 830; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto plain = sched::sms_schedule(loop, mach);
    ASSERT_TRUE(plain.has_value());
    const int pressure = sched::register_pressure(plain->schedule);
    if (pressure < 8) continue;  // already tiny
    const int limit = pressure - 2;
    const auto limited = sched::sms_schedule_reglimited(loop, mach, limit);
    if (!limited.has_value()) continue;  // genuinely cannot fit
    EXPECT_LE(limited->pressure, limit);
    EXPECT_FALSE(limited->schedule.validate().has_value());
    if (limited->retries > 0) {
      EXPECT_GT(limited->schedule.ii(), plain->schedule.ii());
      ++raised;
    }
  }
  EXPECT_GT(raised, 0) << "expected at least one loop to need an II bump";
}

TEST(RegPressure, TmsHonoursLimitToo) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(815);
  const auto plain = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(plain.has_value());
  const int pressure = sched::register_pressure(plain->schedule);
  const auto limited = sched::tms_schedule_reglimited(loop, mach, cfg, pressure + 8);
  ASSERT_TRUE(limited.has_value());
  EXPECT_LE(limited->pressure, pressure + 8);
}

TEST(RegPressure, ImpossibleLimitFails) {
  machine::MachineModel mach;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel fm = workloads::figure1_machine();
  EXPECT_FALSE(sched::sms_schedule_reglimited(loop, fm, 1, 4).has_value());
}

// ---------------- Dependence profiling ---------------------------------

TEST(Profile, MeasuresAnnotatedFrequency) {
  // Streams generated from the annotation must profile back to it.
  for (const double p : {0.1, 0.5, 1.0}) {
    ir::Loop loop("p");
    const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
    const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
    loop.add_mem_flow(st, ld, 1, p);
    const spmt::AddressStreams streams = spmt::default_streams(loop, 91);
    const auto prof = spmt::profile_dependences(loop, streams, 20000);
    ASSERT_EQ(prof.size(), 1u);
    EXPECT_NEAR(prof[0].frequency(), p, 0.02);
  }
}

TEST(Profile, HandlesDistanceAndMultipleEdges) {
  ir::Loop loop("p2");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId l1 = loop.add_instr(ir::Opcode::kLoad);
  const ir::NodeId l2 = loop.add_instr(ir::Opcode::kLoad);
  loop.add_mem_flow(st, l1, 2, 0.3);
  loop.add_mem_flow(st, l2, 1, 0.05);
  const spmt::AddressStreams streams = spmt::default_streams(loop, 92);
  const auto prof = spmt::profile_dependences(loop, streams, 20000);
  ASSERT_EQ(prof.size(), 2u);
  EXPECT_NEAR(prof[0].frequency(), 0.3, 0.02);
  EXPECT_NEAR(prof[1].frequency(), 0.05, 0.01);
}

TEST(Profile, ApplyWritesFrequenciesBack) {
  ir::Loop loop("p3");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  loop.add_mem_flow(st, ld, 1, 0.9);  // pessimistic static annotation
  // Streams that actually collide ~20% of the time.
  spmt::AddressStreams streams(loop.num_instrs());
  auto prod = spmt::AddressStreams::strided(0, 8, 1 << 14);
  streams.set(st, prod);
  streams.set(ld, spmt::AddressStreams::dependent(
                      prod, 1, 0.2, 5, spmt::AddressStreams::strided(1 << 20, 8, 1 << 14)));
  const auto prof = spmt::profile_dependences(loop, streams, 20000);
  const ir::Loop tuned = spmt::apply_profile(loop, prof);
  ASSERT_EQ(tuned.deps().size(), 1u);
  EXPECT_NEAR(tuned.dep(0).probability, 0.2, 0.02);
}

TEST(Profile, PrunesProvenIndependentEdges) {
  ir::Loop loop("p4");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  const ir::NodeId x = loop.add_instr(ir::Opcode::kIAdd);
  loop.add_mem_flow(st, ld, 1, 0.5);  // annotation says maybe
  loop.add_reg_flow(x, x, 1);         // untouched register dep
  spmt::AddressStreams streams(loop.num_instrs());
  streams.set(st, spmt::AddressStreams::strided(0, 8, 1 << 14));
  streams.set(ld, spmt::AddressStreams::strided(1 << 20, 8, 1 << 14));  // disjoint!
  const auto prof = spmt::profile_dependences(loop, streams, 5000);
  const ir::Loop tuned = spmt::apply_profile(loop, prof);
  ASSERT_EQ(tuned.deps().size(), 1u);  // the memory edge is gone
  EXPECT_EQ(tuned.dep(0).kind, ir::DepKind::kRegister);
}

TEST(Profile, RareDependenceClampedNotDropped) {
  ir::Loop loop("p5");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  loop.add_mem_flow(st, ld, 1, 0.5);
  const spmt::AddressStreams streams = spmt::default_streams(loop, 93);
  // One forced collision in a sea of independence: frequency tiny but
  // non-zero after enough iterations.
  std::vector<spmt::EdgeProfile> prof(1);
  prof[0].edge = 0;
  prof[0].producer_executions = 100000;
  prof[0].collisions = 3;
  const ir::Loop tuned = spmt::apply_profile(loop, prof, 0.001);
  ASSERT_EQ(tuned.deps().size(), 1u);
  EXPECT_DOUBLE_EQ(tuned.dep(0).probability, 0.001);  // clamped up
}

TEST(Profile, GuidedSchedulingMatchesAnnotatedScheduling) {
  // Full circle: annotate -> streams -> profile -> re-annotate; TMS on
  // the profiled loop should make the same structural choice as on the
  // original (frequencies round-trip).
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = workloads::figure1_loop(0.05);
  const spmt::AddressStreams streams = spmt::default_streams(loop, 94);
  const auto prof = spmt::profile_dependences(loop, streams, 20000);
  const ir::Loop tuned = spmt::apply_profile(loop, prof);
  ASSERT_EQ(tuned.deps().size(), loop.deps().size());
  const machine::MachineModel fm = workloads::figure1_machine();
  const auto a = sched::tms_schedule(loop, fm, cfg);
  const auto b = sched::tms_schedule(tuned, fm, cfg);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->schedule.ii(), b->schedule.ii());
  EXPECT_EQ(a->schedule.c_delay(cfg), b->schedule.c_delay(cfg));
}

}  // namespace
}  // namespace tms
