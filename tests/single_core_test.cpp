#include <gtest/gtest.h>

#include "sched/mii.hpp"
#include "spmt/single_core.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::spmt {
namespace {

class SingleCoreTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_F(SingleCoreTest, ExecutesAllInstances) {
  const ir::Loop loop = test::tiny_doall();
  const AddressStreams streams = default_streams(loop, 1);
  const auto r = run_single_threaded(loop, mach, cfg, streams, 100);
  EXPECT_EQ(r.instances_executed, 300);
  EXPECT_GT(r.total_cycles, 0);
}

TEST_F(SingleCoreTest, IpcBoundedByIssueWidth) {
  const ir::Loop loop = workloads::figure1_loop();
  const AddressStreams streams = default_streams(loop, 2);
  const auto r = run_single_threaded(loop, mach, cfg, streams, 500);
  EXPECT_LE(r.ipc(), static_cast<double>(mach.issue_width()));
  EXPECT_GT(r.ipc(), 0.0);
}

TEST_F(SingleCoreTest, RecurrenceSerialises) {
  // acc(i) depends on acc(i-1): at least lat(fadd) = 2 cycles/iteration.
  const ir::Loop loop = test::tiny_recurrence();
  const AddressStreams streams = default_streams(loop, 3);
  const std::int64_t n = 1000;
  const auto r = run_single_threaded(loop, mach, cfg, streams, n);
  EXPECT_GE(r.total_cycles, 2 * n);
}

TEST_F(SingleCoreTest, ResourceBoundAtLeastResII) {
  machine::MachineModel m;
  for (std::uint64_t seed = 600; seed < 615; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const AddressStreams streams = default_streams(loop, seed);
    const std::int64_t n = 200;
    const auto r = run_single_threaded(loop, m, cfg, streams, n);
    // Steady-state throughput cannot beat the resource bound.
    EXPECT_GE(r.total_cycles, static_cast<std::int64_t>(sched::res_ii(loop, m)) * (n - 1));
  }
}

TEST_F(SingleCoreTest, Deterministic) {
  const ir::Loop loop = workloads::figure1_loop();
  const AddressStreams streams = default_streams(loop, 4);
  const auto a = run_single_threaded(loop, mach, cfg, streams, 300);
  const auto b = run_single_threaded(loop, mach, cfg, streams, 300);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST_F(SingleCoreTest, CacheMissesSlowExecution) {
  // Pointer-chase: each load's address depends on the previous load, so
  // miss latency serialises execution instead of pipelining away.
  ir::Loop loop("chase");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  loop.add_reg_flow(ld, ld, 1);
  AddressStreams small(loop.num_instrs());
  small.set(ld, AddressStreams::strided(0, 8, 1 << 10));  // 1 KiB: fits L1
  AddressStreams large(loop.num_instrs());
  large.set(ld, AddressStreams::strided(0, 64, 1 << 22));  // 4 MiB, line stride
  const auto rs = run_single_threaded(loop, mach, cfg, small, 2000);
  const auto rl = run_single_threaded(loop, mach, cfg, large, 2000);
  EXPECT_LT(rs.total_cycles, rl.total_cycles);
  EXPECT_LT(rs.l1_misses, rl.l1_misses);
}

}  // namespace
}  // namespace tms::spmt
