// Golden-schedule snapshots: the equivalence layer's anchor.
//
// Ten pinned workloads (hand-built loops, classic kernels, two fuzz
// seeds) are TMS-scheduled under the default machine and SpMT config,
// and the complete outcome — II, MII, the acceptance thresholds, and
// every node's slot — is frozen in tests/data/golden_sched/*.txt. The
// scheduler is deterministic (no RNG anywhere in the sched path), so
// these files are machine-independent.
//
// A hot-path change that alters any schedule fails here and must
// regenerate the snapshots *consciously*:
//
//     ./tests/golden_sched_test --update
//
// which rewrites the files in the source tree (the build embeds
// TMS_SOURCE_DIR) so the diff lands in review. Regeneration still
// enforces the safety floor: every new schedule must pass the
// independent validator and the differential oracle, and its II may
// never exceed the committed one (getting slower than the snapshot is
// an error even when you asked for an update).
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/validate.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/kernels.hpp"

namespace tms {
namespace {

std::string golden_dir() { return std::string(TMS_SOURCE_DIR) + "/tests/data/golden_sched"; }

struct GoldenWorkload {
  std::string name;
  ir::Loop loop;
};

/// The pinned set. Order and membership are part of the contract:
/// adding a workload means committing its snapshot.
std::vector<GoldenWorkload> golden_workloads() {
  std::vector<GoldenWorkload> out;
  out.push_back({"tiny_rec", test::tiny_recurrence()});
  out.push_back({"tiny_doall", test::tiny_doall()});
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    const std::string& n = k.loop.name();
    if (n == "hydro" || n == "tridiag" || n == "first_sum" || n == "fir4" || n == "scatter" ||
        n == "adi_sweep") {
      out.push_back({n, std::move(k.loop)});
    }
  }
  out.push_back({"prop_9001", test::random_loop(9001)});
  out.push_back({"prop_9002", test::random_loop(9002)});
  return out;
}

/// The frozen outcome of one workload.
struct GoldenRecord {
  int ii = 0;
  int mii = 0;
  int c_delay = 0;
  double p_max = 0.0;
  std::vector<int> slots;  ///< indexed by node id
};

GoldenRecord record_of(const sched::TmsResult& r) {
  GoldenRecord g;
  g.ii = r.schedule.ii();
  g.mii = r.mii;
  g.c_delay = r.c_delay_threshold;
  g.p_max = r.p_max;
  const int n = r.schedule.loop().num_instrs();
  g.slots.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) g.slots.push_back(r.schedule.slot(v));
  return g;
}

std::string serialise(const std::string& name, const GoldenRecord& g) {
  std::ostringstream out;
  out << "golden-sched-v1 " << name << "\n";
  out << "ii " << g.ii << "\n";
  out << "mii " << g.mii << "\n";
  out << "c_delay " << g.c_delay << "\n";
  out << "p_max " << g.p_max << "\n";
  for (std::size_t v = 0; v < g.slots.size(); ++v) {
    out << "node " << v << " " << g.slots[v] << "\n";
  }
  return out.str();
}

bool load(const std::string& name, GoldenRecord& g, std::string& err) {
  const std::string path = golden_dir() + "/" + name + ".txt";
  std::ifstream in(path);
  if (!in) {
    err = "missing snapshot " + path + " (run golden_sched_test --update)";
    return false;
  }
  std::string line;
  std::getline(in, line);
  if (line != "golden-sched-v1 " + name) {
    err = path + ": bad header '" + line + "'";
    return false;
  }
  std::string key;
  while (in >> key) {
    if (key == "ii") {
      in >> g.ii;
    } else if (key == "mii") {
      in >> g.mii;
    } else if (key == "c_delay") {
      in >> g.c_delay;
    } else if (key == "p_max") {
      in >> g.p_max;
    } else if (key == "node") {
      std::size_t v = 0;
      int slot = 0;
      in >> v >> slot;
      if (v != g.slots.size()) {
        err = path + ": node ids out of order";
        return false;
      }
      g.slots.push_back(slot);
    } else {
      err = path + ": unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

/// The safety floor applied on every path (test and --update): the
/// schedule must satisfy the independent validator under its own
/// acceptance thresholds and agree with the reference interpreter.
testing::AssertionResult passes_checks(const GoldenWorkload& w, const sched::TmsResult& r,
                                       const machine::SpmtConfig& cfg) {
  check::CheckOptions copts;
  copts.c_delay_threshold = r.c_delay_threshold;
  copts.p_max = r.p_max;
  const check::CheckReport report = check::validate_schedule(r.schedule, cfg, copts);
  if (!report.ok()) {
    return testing::AssertionFailure() << w.name << ": validator: " << report.to_string();
  }
  check::OracleOptions oopts;
  oopts.iterations = 96;
  const check::OracleReport oracle = check::run_differential_oracle(w.loop, r.schedule, cfg, oopts);
  if (!oracle.ok()) {
    return testing::AssertionFailure() << w.name << ": oracle: " << oracle.to_string();
  }
  return testing::AssertionSuccess();
}

class GoldenSchedTest : public testing::Test {
 protected:
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
};

TEST_F(GoldenSchedTest, SchedulesMatchSnapshots) {
  for (const GoldenWorkload& w : golden_workloads()) {
    SCOPED_TRACE(w.name);
    const auto r = sched::tms_schedule(w.loop, mach, cfg);
    ASSERT_TRUE(r.has_value()) << w.name << ": TMS failed";

    GoldenRecord want;
    std::string err;
    ASSERT_TRUE(load(w.name, want, err)) << err;

    const GoldenRecord got = record_of(*r);
    // II regression is called out separately: it is the one diff that is
    // never acceptable, even via --update.
    EXPECT_LE(got.ii, want.ii) << w.name << ": II regressed";
    EXPECT_EQ(got.ii, want.ii);
    EXPECT_EQ(got.mii, want.mii);
    EXPECT_EQ(got.c_delay, want.c_delay);
    EXPECT_EQ(got.p_max, want.p_max);
    ASSERT_EQ(got.slots.size(), want.slots.size());
    for (std::size_t v = 0; v < want.slots.size(); ++v) {
      EXPECT_EQ(got.slots[v], want.slots[v]) << w.name << ": node " << v << " moved";
    }

    EXPECT_TRUE(passes_checks(w, *r, cfg));
  }
}

int update_snapshots() {
  const machine::MachineModel mach;
  const machine::SpmtConfig cfg;
  for (const GoldenWorkload& w : golden_workloads()) {
    const auto r = sched::tms_schedule(w.loop, mach, cfg);
    if (!r.has_value()) {
      std::fprintf(stderr, "update: TMS failed on %s\n", w.name.c_str());
      return 1;
    }
    const auto ok = passes_checks(w, *r, cfg);
    if (!ok) {
      std::fprintf(stderr, "update: %s\n", ok.message());
      return 1;
    }
    // The II floor survives updates: compare against the existing
    // snapshot when there is one.
    GoldenRecord prev;
    std::string err;
    if (load(w.name, prev, err) && r->schedule.ii() > prev.ii) {
      std::fprintf(stderr, "update: %s II regressed %d -> %d; refusing to freeze\n",
                   w.name.c_str(), prev.ii, r->schedule.ii());
      return 1;
    }
    const std::string path = golden_dir() + "/" + w.name + ".txt";
    std::ofstream out(path);
    if (!out || !(out << serialise(w.name, record_of(*r)))) {
      std::fprintf(stderr, "update: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) return tms::update_snapshots();
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
