// The event-vs-legacy simulator differential guarantee
// (docs/SIMULATOR.md): both engines must produce bit-identical
// SpmtStats, committed memory images, value fingerprints and traces on
// randomized workloads — through squashes, write-buffer overflow, the
// speculation-off ablation and the timing-only fast path — plus the
// determinism contract of the parallel sweep driver and the
// quick_estimate fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codegen/kernel_program.hpp"
#include "driver/sim_sweep.hpp"
#include "sched/tms.hpp"
#include "spmt/estimate.hpp"
#include "spmt/sim.hpp"
#include "test_util.hpp"
#include "workloads/kernels.hpp"

namespace tms {
namespace {

void expect_stats_equal(const spmt::SpmtStats& a, const spmt::SpmtStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.threads_committed, b.threads_committed) << what;
  EXPECT_EQ(a.instances_executed, b.instances_executed) << what;
  EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
  EXPECT_EQ(a.sync_stall_cycles, b.sync_stall_cycles) << what;
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles) << what;
  EXPECT_EQ(a.send_recv_pairs, b.send_recv_pairs) << what;
  EXPECT_EQ(a.misspeculations, b.misspeculations) << what;
  EXPECT_EQ(a.squashed_cycles, b.squashed_cycles) << what;
  EXPECT_EQ(a.wb_overflow_waits, b.wb_overflow_waits) << what;
  EXPECT_EQ(a.spec_wait_cycles, b.spec_wait_cycles) << what;
  EXPECT_EQ(a.send_block_cycles, b.send_block_cycles) << what;
  EXPECT_EQ(a.bus_transfers, b.bus_transfers) << what;
  EXPECT_EQ(a.bus_cycles, b.bus_cycles) << what;
  EXPECT_EQ(a.l1_hits, b.l1_hits) << what;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << what;
  EXPECT_EQ(a.l2_hits, b.l2_hits) << what;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << what;
}

void expect_results_identical(const spmt::SpmtResult& ev, const spmt::SpmtResult& lg,
                              const std::string& what) {
  expect_stats_equal(ev.stats, lg.stats, what);
  EXPECT_EQ(ev.value_fingerprint, lg.value_fingerprint) << what;
  EXPECT_EQ(ev.memory, lg.memory) << what;
  ASSERT_EQ(ev.trace.size(), lg.trace.size()) << what;
  for (std::size_t i = 0; i < ev.trace.size(); ++i) {
    const spmt::ThreadTrace& a = ev.trace[i];
    const spmt::ThreadTrace& b = lg.trace[i];
    EXPECT_EQ(a.thread, b.thread) << what << " trace " << i;
    EXPECT_EQ(a.core, b.core) << what << " trace " << i;
    EXPECT_EQ(a.start, b.start) << what << " trace " << i;
    EXPECT_EQ(a.completion, b.completion) << what << " trace " << i;
    EXPECT_EQ(a.commit_end, b.commit_end) << what << " trace " << i;
    EXPECT_EQ(a.attempts, b.attempts) << what << " trace " << i;
    EXPECT_EQ(a.sync_stall, b.sync_stall) << what << " trace " << i;
    EXPECT_EQ(a.mem_stall, b.mem_stall) << what << " trace " << i;
  }
}

/// Runs both engines on the same point and checks bit identity.
void check_differential(const ir::Loop& loop, const codegen::KernelProgram& kp,
                        const machine::SpmtConfig& cfg, std::uint64_t stream_seed,
                        spmt::SpmtOptions opts, const std::string& what) {
  const spmt::AddressStreams streams = spmt::default_streams(loop, stream_seed);
  const spmt::SpmtResult ev = spmt::run_spmt_event(loop, kp, cfg, streams, opts);
  const spmt::SpmtResult lg = spmt::run_spmt_legacy(loop, kp, cfg, streams, opts);
  expect_results_identical(ev, lg, what);
}

/// The always-colliding squashy loop from oracle_test: the store sits at
/// the end of the iteration, the dependent load of the next iteration at
/// the start, so every younger thread squashes and re-executes.
ir::Loop squashy_loop() {
  ir::Loop loop("squashy");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore, "st");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad, "ld");
  loop.add_mem_flow(st, ld, /*distance=*/1, /*probability=*/1.0);
  return loop;
}

codegen::KernelProgram squashy_kernel(const ir::Loop& loop, const machine::MachineModel& mach,
                                      const machine::SpmtConfig& cfg) {
  sched::Schedule s(loop, mach, 16);
  s.set_slot(ir::NodeId{0}, 15);  // store
  s.set_slot(ir::NodeId{1}, 0);   // load
  EXPECT_FALSE(s.validate().has_value());
  EXPECT_EQ(s.speculated_deps(cfg).size(), 1u);
  return codegen::lower_kernel(s, cfg);
}

TEST(EventSim, RandomSuiteBitIdenticalAcrossCoreCounts) {
  machine::MachineModel mach;
  for (std::uint64_t seed : {1u, 3u, 9u, 17u, 21u, 33u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (int ncore : {2, 4, 8, 16, 32}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      ASSERT_TRUE(tms.has_value()) << "seed " << seed;
      const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
      spmt::SpmtOptions opts;
      opts.iterations = 80;
      opts.collect_trace = true;
      check_differential(loop, kp, cfg, seed, opts,
                         "seed " + std::to_string(seed) + " ncore " + std::to_string(ncore));
    }
  }
}

TEST(EventSim, SquashPathBitIdentical) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = squashy_loop();
  const codegen::KernelProgram kp = squashy_kernel(loop, mach, cfg);

  spmt::SpmtOptions opts;
  opts.iterations = 200;
  opts.collect_trace = true;
  const spmt::AddressStreams streams = spmt::default_streams(loop, 7);
  const spmt::SpmtResult ev = spmt::run_spmt_event(loop, kp, cfg, streams, opts);
  const spmt::SpmtResult lg = spmt::run_spmt_legacy(loop, kp, cfg, streams, opts);
  ASSERT_GT(ev.stats.misspeculations, 0) << "squash path was not exercised";
  expect_results_identical(ev, lg, "squashy");
}

TEST(EventSim, WriteBufferOverflowBitIdentical) {
  // More stores per iteration than the speculation write buffer holds:
  // every thread head-serialises, which exercises the commit-chain wait
  // in the event machinery.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.spec_write_buffer_entries = 1;
  ir::Loop loop("two_stores");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad, "ld");
  const ir::NodeId m = loop.add_instr(ir::Opcode::kFMul, "m");
  const ir::NodeId st1 = loop.add_instr(ir::Opcode::kStore, "st1");
  const ir::NodeId st2 = loop.add_instr(ir::Opcode::kStore, "st2");
  loop.add_reg_flow(ld, m, 0);
  loop.add_reg_flow(m, st1, 0);
  loop.add_reg_flow(m, st2, 0);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
  ASSERT_GT(kp.stores_per_iter, cfg.spec_write_buffer_entries);

  spmt::SpmtOptions opts;
  opts.iterations = 64;
  opts.collect_trace = true;
  const spmt::AddressStreams streams = spmt::default_streams(loop, 5);
  const spmt::SpmtResult ev = spmt::run_spmt_event(loop, kp, cfg, streams, opts);
  const spmt::SpmtResult lg = spmt::run_spmt_legacy(loop, kp, cfg, streams, opts);
  ASSERT_GT(ev.stats.wb_overflow_waits, 0);
  expect_results_identical(ev, lg, "wb_overflow");
}

TEST(EventSim, SpeculationDisabledBitIdentical) {
  machine::MachineModel mach;
  for (std::uint64_t seed : {9u, 21u}) {
    const ir::Loop loop = test::random_loop(seed);
    machine::SpmtConfig cfg;
    cfg.ncore = 8;
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value()) << "seed " << seed;
    const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = 80;
    opts.disable_speculation = true;
    check_differential(loop, kp, cfg, seed, opts, "spec-off seed " + std::to_string(seed));
  }
}

TEST(EventSim, TimingOnlyModeMatchesValueModeStats) {
  // keep_memory=false routes steady-state threads through the
  // eventful-ops fast path; timing must not depend on functional values,
  // so the stats must equal both the legacy timing run and the full
  // value-tracking run.
  machine::MachineModel mach;
  for (std::uint64_t seed : {3u, 17u, 33u}) {
    const ir::Loop loop = test::random_loop(seed);
    machine::SpmtConfig cfg;
    cfg.ncore = 16;
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value()) << "seed " << seed;
    const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
    const spmt::AddressStreams streams = spmt::default_streams(loop, seed);

    spmt::SpmtOptions timing;
    timing.iterations = 120;
    timing.keep_memory = false;
    timing.collect_trace = true;
    const spmt::SpmtResult ev = spmt::run_spmt_event(loop, kp, cfg, streams, timing);
    const spmt::SpmtResult lg = spmt::run_spmt_legacy(loop, kp, cfg, streams, timing);
    expect_results_identical(ev, lg, "timing seed " + std::to_string(seed));

    spmt::SpmtOptions values = timing;
    values.keep_memory = true;
    const spmt::SpmtResult full = spmt::run_spmt_event(loop, kp, cfg, streams, values);
    expect_stats_equal(ev.stats, full.stats, "timing-vs-values seed " + std::to_string(seed));
  }
}

TEST(EventSim, SquashyTimingOnlyBitIdentical) {
  // The fast path must also replay squashed attempts identically.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = squashy_loop();
  const codegen::KernelProgram kp = squashy_kernel(loop, mach, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 200;
  opts.keep_memory = false;
  opts.collect_trace = true;
  check_differential(loop, kp, cfg, 7, opts, "squashy-timing");
}

// ---- Parallel sweep driver ------------------------------------------------

std::vector<driver::SimSweepPoint> build_sweep_points() {
  machine::MachineModel mach;
  std::vector<driver::SimSweepPoint> points;
  for (std::uint64_t seed : {3u, 9u, 21u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (int ncore : {8, 16}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      if (!tms.has_value()) continue;
      driver::SimSweepPoint p;
      p.name = loop.name() + ".ncore" + std::to_string(ncore);
      p.loop = loop;
      p.kp = codegen::lower_kernel(tms->schedule, cfg);
      p.cfg = cfg;
      p.sim.iterations = 64;
      p.stream_seed = seed;
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(SimSweep, DeterministicAcrossThreadCounts) {
  const std::vector<driver::SimSweepPoint> points = build_sweep_points();
  ASSERT_GE(points.size(), 4u);

  driver::SimSweepOptions seq;
  seq.threads = 1;
  driver::SimSweepOptions par;
  par.threads = 8;
  const auto a = driver::run_sim_sweep(points, seq);
  const auto b = driver::run_sim_sweep(points, par);
  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].ok) << a[i].name << ": " << a[i].error;
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ncore, b[i].ncore);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].value_fingerprint, b[i].value_fingerprint) << a[i].name;
    expect_stats_equal(a[i].stats, b[i].stats, a[i].name);
  }
}

TEST(SimSweep, MatchesDirectRuns) {
  const std::vector<driver::SimSweepPoint> points = build_sweep_points();
  driver::SimSweepOptions opts;
  opts.threads = 4;
  const auto outcomes = driver::run_sim_sweep(points, opts);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const spmt::AddressStreams streams =
        spmt::default_streams(points[i].loop, points[i].stream_seed);
    const spmt::SpmtResult direct =
        spmt::run_spmt(points[i].loop, points[i].kp, points[i].cfg, streams, points[i].sim);
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].name;
    expect_stats_equal(outcomes[i].stats, direct.stats, outcomes[i].name);
    EXPECT_EQ(outcomes[i].value_fingerprint, direct.value_fingerprint) << outcomes[i].name;
  }
}

// ---- quick_estimate -------------------------------------------------------

TEST(QuickEstimate, VerifiesScheduledKernelAtServingSize) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(9);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);

  const spmt::QuickEstimate qe = spmt::quick_estimate(loop, kp, cfg);
  EXPECT_TRUE(qe.semantics_ok);
  EXPECT_EQ(qe.iterations, 32);  // max(32, 8*4) capped at 256
  EXPECT_GT(qe.cycles_per_iteration, 0.0);
  EXPECT_EQ(qe.stats.threads_committed, qe.iterations + kp.stage_count - 1);
}

TEST(QuickEstimate, MatchesFullRunAtSameIterations) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.ncore = 8;
  const ir::Loop loop = test::random_loop(21);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);

  spmt::QuickEstimateOptions qopts;
  qopts.iterations = 48;
  qopts.stream_seed = 21;
  const spmt::QuickEstimate qe = spmt::quick_estimate(loop, kp, cfg, qopts);
  EXPECT_TRUE(qe.semantics_ok);

  spmt::SpmtOptions sim;
  sim.iterations = 48;
  const spmt::AddressStreams streams = spmt::default_streams(loop, 21);
  const spmt::SpmtResult full = spmt::run_spmt(loop, kp, cfg, streams, sim);
  expect_stats_equal(qe.stats, full.stats, "quick-vs-full");
}

TEST(QuickEstimate, SquashHeavyKernelStillSemanticallyOk) {
  // Even an always-squashing schedule commits reference semantics; the
  // estimate reports the (terrible) timing honestly instead of failing.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = squashy_loop();
  const codegen::KernelProgram kp = squashy_kernel(loop, mach, cfg);
  spmt::QuickEstimateOptions qopts;
  qopts.iterations = 64;
  const spmt::QuickEstimate qe = spmt::quick_estimate(loop, kp, cfg, qopts);
  EXPECT_TRUE(qe.semantics_ok);
  EXPECT_GT(qe.misspec_frequency, 0.0);
}

// Every allocation policy, bus on and off, both engines: the
// bit-identity contract is policy-independent. ncore 32 is included
// because that is where non-uniform policies diverge most from modulo.
TEST(EventSim, EveryPolicyBitIdenticalAcrossEngines) {
  machine::MachineModel mach;
  const machine::AllocPolicy policies[] = {
      machine::AllocPolicy::kModulo, machine::AllocPolicy::kRoundRobinStride,
      machine::AllocPolicy::kLocality, machine::AllocPolicy::kDepDistance};
  for (std::uint64_t seed : {3u, 17u}) {
    const ir::Loop loop = test::random_loop(seed);
    for (const machine::AllocPolicy pol : policies) {
      for (int ncore : {4, 32}) {
        for (int bus_bytes : {0, 8}) {
          machine::SpmtConfig cfg;
          cfg.ncore = ncore;
          cfg.policy = pol;
          cfg.policy_stride = 3;
          cfg.policy_block = 2;
          cfg.bus_bytes_per_transfer = bus_bytes;
          const auto tms = sched::tms_schedule(loop, mach, cfg);
          ASSERT_TRUE(tms.has_value()) << "seed " << seed;
          const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
          spmt::SpmtOptions opts;
          opts.iterations = 80;
          opts.collect_trace = true;
          check_differential(loop, kp, cfg, seed, opts,
                             "seed " + std::to_string(seed) + " policy " +
                                 std::to_string(static_cast<int>(pol)) + " ncore " +
                                 std::to_string(ncore) + " bus " + std::to_string(bus_bytes));
        }
      }
    }
  }
}

// With the bus off, the modulo policy's relay pricing d_ker*(c_reg_com+0)
// must leave every legacy stat untouched; bus_transfers is the pure
// dataflow volume and bus_cycles stays zero.
TEST(EventSim, BusOffModuloChargesNoBusCycles) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_recurrence();
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 100;
  const spmt::SpmtResult r =
      spmt::run_spmt(loop, kp, cfg, spmt::default_streams(loop, 42), opts);
  EXPECT_GT(r.stats.bus_transfers, 0);
  EXPECT_EQ(r.stats.bus_cycles, 0);
}

// Pinned pre-policy baseline: with the default config (modulo policy, bus
// term off) both engines must reproduce the seed repo's stats and value
// fingerprints bit-exactly. These rows were captured at the commit that
// introduced the policy subsystem, from a build without it.
TEST(GoldenStats, DefaultConfigReproducesPrePolicyBaseline) {
  struct Row {
    const char* name;
    int ncore;
    std::int64_t threads_committed, instances_executed, total_cycles, sync_stall_cycles,
        mem_stall_cycles, send_recv_pairs, misspeculations, squashed_cycles, wb_overflow_waits,
        spec_wait_cycles, send_block_cycles;
    std::uint64_t l1_hits, l1_misses, l2_hits, l2_misses;
    std::uint64_t fingerprint;
  };
  const Row rows[] = {
      {"tiny_rec", 2, 401, 800, 2544, 2410, 736, 798, 0, 0, 0, 0, 0, 384u, 16u, 8u, 8u,
       0xbd6e8767d7bf4681ull},
      {"tiny_rec", 4, 400, 800, 2557, 6428, 928, 400, 0, 0, 0, 0, 0, 368u, 32u, 24u, 8u,
       0xbd6e8767d7bf4681ull},
      {"tiny_rec", 8, 400, 800, 2421, 14952, 1312, 400, 0, 0, 0, 0, 0, 336u, 64u, 56u, 8u,
       0xbd6e8767d7bf4681ull},
      {"tiny_doall", 2, 402, 1200, 2179, 1243, 736, 796, 0, 0, 0, 0, 0, 768u, 32u, 8u, 8u,
       0x429979c66180cdcbull},
      {"tiny_doall", 4, 400, 1200, 1837, 0, 928, 0, 0, 0, 0, 0, 0, 736u, 64u, 24u, 8u,
       0x429979c66180cdcbull},
      {"tiny_doall", 8, 400, 1200, 1745, 0, 1312, 0, 0, 0, 0, 0, 0, 672u, 128u, 56u, 8u,
       0x429979c66180cdcbull},
      {"hydro", 2, 405, 4000, 4223, 2669, 2208, 5530, 0, 0, 0, 0, 0, 1536u, 64u, 24u, 24u,
       0x403e8fc347c8599bull},
      {"hydro", 4, 403, 4000, 3915, 6765, 2784, 2779, 0, 0, 0, 0, 0, 1472u, 128u, 72u, 24u,
       0x403e8fc347c8599bull},
      {"hydro", 8, 400, 4000, 3450, 4178, 3936, 400, 0, 0, 0, 0, 0, 1344u, 256u, 168u, 24u,
       0x403e8fc347c8599bull},
      {"tridiag", 2, 401, 2400, 4849, 3402, 1472, 798, 0, 0, 0, 0, 0, 1152u, 48u, 16u, 16u,
       0x370821164a0feecull},
      {"tridiag", 4, 401, 2400, 4725, 12154, 1856, 798, 0, 0, 0, 0, 0, 1104u, 96u, 48u, 16u,
       0x370821164a0feecull},
      {"tridiag", 8, 401, 2400, 4491, 26616, 2624, 798, 0, 0, 0, 0, 1498, 1008u, 192u, 112u,
       16u, 0x370821164a0feecull},
      {"fir4", 2, 405, 4000, 3055, 1320, 736, 5135, 0, 0, 0, 0, 0, 768u, 32u, 8u, 8u,
       0xbef3ad3c58f4549ull},
      {"fir4", 4, 403, 4000, 2259, 2001, 928, 1985, 0, 0, 0, 0, 0, 736u, 64u, 24u, 8u,
       0xbef3ad3c58f4549ull},
      {"fir4", 8, 403, 4000, 2215, 4364, 1312, 1985, 0, 0, 0, 0, 720, 672u, 128u, 56u, 8u,
       0xbef3ad3c58f4549ull},
      {"scatter", 2, 402, 3200, 4412, 711, 2208, 1194, 0, 0, 0, 0, 0, 1536u, 64u, 24u, 24u,
       0xede1c77f8ec4e7f2ull},
      {"scatter", 4, 401, 3200, 3299, 1573, 2864, 1197, 10, 290, 0, 0, 0, 1512u, 128u, 72u,
       25u, 0xede1c77f8ec4e7f2ull},
      {"scatter", 8, 401, 3200, 3107, 5302, 3912, 1197, 11, 555, 0, 0, 997, 1388u, 256u, 168u,
       25u, 0xede1c77f8ec4e7f2ull},
      {"prop_9001", 2, 403, 11600, 6803, 2181, 2944, 5161, 0, 0, 0, 0, 0, 2304u, 96u, 32u,
       32u, 0x273d1f805c2e9768ull},
      {"prop_9001", 4, 403, 11600, 5368, 8029, 3712, 3176, 0, 0, 0, 0, 0, 2208u, 192u, 96u,
       32u, 0x273d1f805c2e9768ull},
      {"prop_9001", 8, 400, 11600, 5158, 10520, 5248, 800, 0, 0, 0, 0, 0, 2016u, 384u, 224u,
       32u, 0x273d1f805c2e9768ull},
  };

  auto loop_by_name = [](const std::string& name) -> ir::Loop {
    if (name == "tiny_rec") return test::tiny_recurrence();
    if (name == "tiny_doall") return test::tiny_doall();
    if (name == "prop_9001") return test::random_loop(9001);
    for (workloads::Kernel& k : workloads::classic_kernels()) {
      if (k.loop.name() == name) return std::move(k.loop);
    }
    ADD_FAILURE() << "no workload named " << name;
    return ir::Loop("missing");
  };

  machine::MachineModel mach;
  for (const Row& row : rows) {
    const ir::Loop loop = loop_by_name(row.name);
    machine::SpmtConfig cfg;
    cfg.ncore = row.ncore;
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value()) << row.name;
    const codegen::KernelProgram kp = codegen::lower_kernel(tms->schedule, cfg);
    const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
    spmt::SpmtOptions opts;
    opts.iterations = 400;
    for (const spmt::SimEngine engine :
         {spmt::SimEngine::kEventDriven, spmt::SimEngine::kLegacyStepper}) {
      opts.engine = engine;
      const spmt::SpmtResult r = spmt::run_spmt(loop, kp, cfg, streams, opts);
      const std::string what = std::string(row.name) + " ncore " + std::to_string(row.ncore) +
                               (engine == spmt::SimEngine::kEventDriven ? " event" : " legacy");
      EXPECT_EQ(r.stats.threads_committed, row.threads_committed) << what;
      EXPECT_EQ(r.stats.instances_executed, row.instances_executed) << what;
      EXPECT_EQ(r.stats.total_cycles, row.total_cycles) << what;
      EXPECT_EQ(r.stats.sync_stall_cycles, row.sync_stall_cycles) << what;
      EXPECT_EQ(r.stats.mem_stall_cycles, row.mem_stall_cycles) << what;
      EXPECT_EQ(r.stats.send_recv_pairs, row.send_recv_pairs) << what;
      EXPECT_EQ(r.stats.misspeculations, row.misspeculations) << what;
      EXPECT_EQ(r.stats.squashed_cycles, row.squashed_cycles) << what;
      EXPECT_EQ(r.stats.wb_overflow_waits, row.wb_overflow_waits) << what;
      EXPECT_EQ(r.stats.spec_wait_cycles, row.spec_wait_cycles) << what;
      EXPECT_EQ(r.stats.send_block_cycles, row.send_block_cycles) << what;
      EXPECT_EQ(r.stats.l1_hits, row.l1_hits) << what;
      EXPECT_EQ(r.stats.l1_misses, row.l1_misses) << what;
      EXPECT_EQ(r.stats.l2_hits, row.l2_hits) << what;
      EXPECT_EQ(r.stats.l2_misses, row.l2_misses) << what;
      EXPECT_EQ(r.value_fingerprint, row.fingerprint) << what;
      EXPECT_EQ(r.stats.bus_cycles, 0) << what;  // bus off by default
    }
  }
}

}  // namespace
}  // namespace tms
