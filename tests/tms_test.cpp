#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "sched/mii.hpp"
#include "sched/mrt.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

TEST(Tms, Figure1ReducesCDelay) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto sms = sms_schedule(loop, mach);
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value());
  ASSERT_TRUE(tms.has_value());
  EXPECT_LT(tms->schedule.c_delay(cfg), sms->schedule.c_delay(cfg));
  // The cost model must rate the TMS schedule at least as good.
  const double f_sms = cost::per_iter_nomiss(sms->schedule.ii(), sms->schedule.c_delay(cfg), cfg);
  const double f_tms = cost::per_iter_nomiss(tms->schedule.ii(), tms->schedule.c_delay(cfg), cfg);
  EXPECT_LE(f_tms, f_sms);
}

TEST(Tms, CDelayThresholdHonoured) {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  EXPECT_LE(tms->schedule.c_delay(cfg), tms->c_delay_threshold);
}

TEST(Tms, DoallLoopHasNoSyncAtAll) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_doall();
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  EXPECT_EQ(tms->schedule.c_delay(cfg), 0);
  EXPECT_EQ(tms->schedule.reg_dep_set().size(), 0u);
}

TEST(Tms, RecurrenceBoundLoopKeepsWorking) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_recurrence();
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  EXPECT_FALSE(tms->schedule.validate().has_value());
  // The accumulator's self dependence crosses threads; its sync delay is
  // bounded below by 1 + C_reg_com.
  EXPECT_GE(tms->schedule.c_delay(cfg), cfg.min_c_delay());
}

TEST(Tms, NcoreOneDegeneratesGracefully) {
  machine::SpmtConfig cfg;
  cfg.ncore = 1;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  EXPECT_FALSE(tms->schedule.validate().has_value());
}

TEST(Tms, ReportsSearchTelemetry) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::tiny_recurrence();
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  EXPECT_GT(tms->pairs_tried, 0);
  EXPECT_GT(tms->f_value, 0.0);
  EXPECT_GE(tms->misspec_probability, 0.0);
  EXPECT_LE(tms->misspec_probability, 1.0);
}

// Property sweep over random loops: schedules are valid, resource
// feasible, honour the C1 threshold, and never lose to SMS under the
// cost model's F.
class TmsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TmsProperty, ValidAndThresholded) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(GetParam());
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const Schedule& s = tms->schedule;
  EXPECT_FALSE(s.validate().has_value());
  ModuloReservationTable mrt(mach, s.ii());
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    ASSERT_TRUE(mrt.can_place(loop.instr(v).op, s.slot(v)));
    mrt.place(loop.instr(v).op, s.slot(v));
  }
  // C1: every inter-thread register dependence within the threshold.
  for (const std::size_t ei : s.reg_dep_set()) {
    EXPECT_LE(s.sync_delay(loop.dep(ei), cfg), tms->c_delay_threshold);
  }
  EXPECT_GE(s.ii(), tms->mii);
}

// TMS is not guaranteed to win on every single loop (the paper's wupwise
// regresses), but it must never be drastically worse, and it must win in
// aggregate across a loop population.
TEST_P(TmsProperty, NeverMuchWorseThanSmsUnderCostModel) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop loop = test::random_loop(GetParam());
  const auto sms = sms_schedule(loop, mach);
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value());
  ASSERT_TRUE(tms.has_value());
  const double t_sms = cost::estimate_execution_time(
      sms->schedule.ii(), sms->schedule.c_delay(cfg), sms->schedule.misspec_probability(cfg),
      cfg, 1000);
  const double t_tms = cost::estimate_execution_time(
      tms->schedule.ii(), tms->schedule.c_delay(cfg), tms->schedule.misspec_probability(cfg),
      cfg, 1000);
  EXPECT_LE(t_tms, 2.0 * t_sms);
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, TmsProperty,
                         ::testing::Range<std::uint64_t>(2000, 2060));

TEST(TmsAggregate, BeatsSmsAcrossLoopPopulation) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  double sum_sms = 0.0;
  double sum_tms = 0.0;
  int wins = 0;
  int total = 0;
  for (std::uint64_t seed = 2000; seed < 2060; ++seed) {
    const ir::Loop loop = test::random_loop(seed);
    const auto sms = sms_schedule(loop, mach);
    const auto tms = tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(sms.has_value() && tms.has_value());
    const double t_sms = cost::estimate_execution_time(
        sms->schedule.ii(), sms->schedule.c_delay(cfg), sms->schedule.misspec_probability(cfg),
        cfg, 1000);
    const double t_tms = cost::estimate_execution_time(
        tms->schedule.ii(), tms->schedule.c_delay(cfg), tms->schedule.misspec_probability(cfg),
        cfg, 1000);
    sum_sms += t_sms;
    sum_tms += t_tms;
    if (t_tms <= t_sms + 1e-9) ++wins;
    ++total;
  }
  EXPECT_LT(sum_tms, sum_sms) << "TMS must win in aggregate";
  EXPECT_GE(static_cast<double>(wins) / total, 0.8)
      << "TMS should win on the large majority of loops";
}

}  // namespace
}  // namespace tms::sched
