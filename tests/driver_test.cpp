// Unit tests for the batch-compilation driver: the work-stealing JobPool
// (every job exactly once, under contention, across thread counts), the
// content-addressed ScheduleCache (key sensitivity, LRU eviction, disk
// round-trips, corruption rejection), and the batch pipeline's
// determinism and failure-isolation contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <thread>
#include <vector>

#include "driver/batch.hpp"
#include "driver/job_pool.hpp"
#include "driver/schedule_cache.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "workloads/kernels.hpp"

namespace tms {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the test binary's cwd.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_("driver_test_scratch_" + tag) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------- JobPool

TEST(JobPool, RunsEveryJobExactlyOnceAcrossThreadCounts) {
  constexpr std::size_t kJobs = 500;
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> ran(kJobs);
    driver::JobPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    pool.run(kJobs, [&](std::size_t i) { ran[i].fetch_add(1); });
    for (std::size_t i = 0; i < kJobs; ++i) {
      ASSERT_EQ(ran[i].load(), 1) << "job " << i << " with " << threads << " thread(s)";
    }
  }
}

TEST(JobPool, ZeroJobsIsANoOp) {
  driver::JobPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(JobPool, DefaultThreadsIsPositive) {
  EXPECT_GE(driver::JobPool::default_threads(), 1);
  EXPECT_EQ(driver::JobPool(0).threads(), driver::JobPool::default_threads());
  EXPECT_EQ(driver::JobPool(-3).threads(), driver::JobPool::default_threads());
}

// Owner popping while several thieves steal from the same deque: the jobs
// must partition exactly — nothing lost, nothing duplicated. This is the
// race-heavy path TSan exercises.
TEST(JobPool, StealDequePartitionsJobsUnderContention) {
  constexpr std::size_t kJobs = 20000;
  constexpr int kThieves = 3;
  driver::StealDeque dq(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) dq.seed(i);

  std::vector<std::vector<std::size_t>> taken(1 + kThieves);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // owner
    std::size_t job;
    while (dq.pop(job)) taken[0].push_back(job);
  });
  for (int t = 0; t < kThieves; ++t) {
    threads.emplace_back([&, t] {
      std::size_t job;
      while (true) {
        const driver::StealDeque::Steal s = dq.steal(job);
        if (s == driver::StealDeque::Steal::kStole) {
          taken[static_cast<std::size_t>(1 + t)].push_back(job);
        } else if (s == driver::StealDeque::Steal::kEmpty) {
          break;
        }
        // kLost: retry
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<std::size_t> all;
  for (const auto& v : taken) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) ASSERT_EQ(all[i], i);
}

TEST(JobPool, ExceptionDoesNotStopOtherJobs) {
  constexpr std::size_t kJobs = 64;
  std::vector<std::atomic<int>> ran(kJobs);
  driver::JobPool pool(4);
  EXPECT_THROW(
      pool.run(kJobs,
               [&](std::size_t i) {
                 ran[i].fetch_add(1);
                 if (i == 13) throw std::runtime_error("job 13 exploded");
               }),
      std::runtime_error);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "job " << i;
  }
}

// ----------------------------------------------------------- ScheduleCache

driver::ScheduleCache::Entry make_entry(int ii, int nslots) {
  driver::ScheduleCache::Entry e;
  e.scheduler = "tms";
  e.ii = ii;
  e.mii = ii;
  e.c_delay_threshold = 5;
  e.p_max = 0.25;
  for (int i = 0; i < nslots; ++i) e.slots.push_back(i);
  return e;
}

TEST(ScheduleCache, KeyChangesWithEveryInput) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const ir::Loop a = test::tiny_chain();
  const ir::Loop b = test::tiny_recurrence();

  const std::uint64_t base = driver::ScheduleCache::key(a, mach, cfg, "tms");
  EXPECT_EQ(driver::ScheduleCache::key(a, mach, cfg, "tms"), base) << "key must be stable";

  EXPECT_NE(driver::ScheduleCache::key(a, mach, cfg, "sms"), base) << "scheduler kind";
  EXPECT_NE(driver::ScheduleCache::key(b, mach, cfg, "tms"), base) << "loop content";

  machine::SpmtConfig cfg2 = cfg;
  cfg2.ncore = cfg.ncore + 4;
  EXPECT_NE(driver::ScheduleCache::key(a, mach, cfg2, "tms"), base) << "SpmtConfig";

  machine::MachineModel mach2;
  mach2.set_issue_width(mach.issue_width() + 2);
  EXPECT_NE(driver::ScheduleCache::key(a, mach2, cfg, "tms"), base) << "issue width";

  machine::MachineModel mach3;
  machine::OpTiming t = mach3.timing(ir::Opcode::kFMul);
  t.latency += 1;
  mach3.set_timing(ir::Opcode::kFMul, t);
  EXPECT_NE(driver::ScheduleCache::key(a, mach3, cfg, "tms"), base) << "opcode timing";
}

TEST(ScheduleCache, HitMissAndSlotCountGuard) {
  driver::ScheduleCache cache(64);
  const driver::ScheduleCache::Entry e = make_entry(7, 4);

  EXPECT_FALSE(cache.lookup(1, 4).has_value());
  cache.insert(1, e);
  const auto hit = cache.lookup(1, 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ii, 7);
  EXPECT_EQ(hit->slots, e.slots);

  // A key collision between loops of different sizes must read as a miss.
  EXPECT_FALSE(cache.lookup(1, 5).has_value());

  const driver::ScheduleCache::Stats s = cache.stats();
  EXPECT_EQ(s.memory_hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(ScheduleCache, EvictsLeastRecentlyUsed) {
  // capacity 16 over 16 shards = 1 entry per shard; keys 16 and 32 land
  // in the same shard, so the second insert evicts the first.
  driver::ScheduleCache cache(16);
  cache.insert(16, make_entry(3, 2));
  cache.insert(32, make_entry(4, 2));
  EXPECT_FALSE(cache.lookup(16, 2).has_value());
  ASSERT_TRUE(cache.lookup(32, 2).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ScheduleCache, DiskRoundTrip) {
  ScratchDir dir("disk");
  const driver::ScheduleCache::Entry e = make_entry(9, 3);
  {
    driver::ScheduleCache writer(64, dir.path());
    writer.insert(42, e);
  }
  driver::ScheduleCache reader(64, dir.path());
  const auto hit = reader.lookup(42, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scheduler, "tms");
  EXPECT_EQ(hit->ii, 9);
  EXPECT_EQ(hit->mii, 9);
  EXPECT_EQ(hit->c_delay_threshold, 5);
  EXPECT_DOUBLE_EQ(hit->p_max, 0.25);
  EXPECT_EQ(hit->slots, e.slots);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // Now resident in memory: a second lookup must not touch the disk.
  ASSERT_TRUE(reader.lookup(42, 3).has_value());
  EXPECT_EQ(reader.stats().memory_hits, 1u);
}

std::string cache_file(const std::string& dir, std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(key));
  return dir + "/" + buf + ".tmscache";
}

TEST(ScheduleCache, CorruptDiskEntriesAreRejected) {
  ScratchDir dir("corrupt");
  {
    std::ofstream out(cache_file(dir.path(), 7));
    out << "not a cache file at all\n";
  }
  {
    // Truncated: well-formed prefix, no slots, no end marker.
    std::ofstream out(cache_file(dir.path(), 8));
    out << "tmscache v1\nkey 0000000000000008\nscheduler tms\nii 4\n";
  }
  driver::ScheduleCache cache(64, dir.path());
  EXPECT_FALSE(cache.lookup(7, 2).has_value());
  EXPECT_FALSE(cache.lookup(8, 2).has_value());
  EXPECT_EQ(cache.stats().disk_rejects, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ScheduleCache, RenamedDiskEntryIsRejected) {
  ScratchDir dir("renamed");
  {
    driver::ScheduleCache writer(64, dir.path());
    writer.insert(42, make_entry(9, 3));
  }
  // A file whose embedded key disagrees with its name (copied or renamed
  // by hand) must not be trusted.
  fs::rename(cache_file(dir.path(), 42), cache_file(dir.path(), 43));
  driver::ScheduleCache reader(64, dir.path());
  EXPECT_FALSE(reader.lookup(43, 3).has_value());
  EXPECT_EQ(reader.stats().disk_rejects, 1u);
}

// ------------------------------------------------------------------ batch

std::vector<driver::BatchJob> kernel_jobs() {
  machine::SpmtConfig cfg;
  std::vector<driver::BatchJob> jobs;
  for (const workloads::Kernel& k : workloads::classic_kernels()) {
    for (const char* sched : {"sms", "tms"}) {
      jobs.push_back({k.loop.name(), k.loop, cfg, sched});
    }
  }
  return jobs;
}

TEST(Batch, CanonicalJsonIsIdenticalAcrossThreadCounts) {
  machine::MachineModel mach;
  const std::vector<driver::BatchJob> jobs = kernel_jobs();
  driver::BatchOptions opts;
  opts.simulate_iterations = 40;

  std::vector<std::string> reports;
  for (const int threads : {1, 2, 8}) {
    opts.jobs = threads;
    driver::ScheduleCache cache;  // private per run
    const driver::BatchReport r = driver::run_batch(jobs, mach, opts, &cache);
    EXPECT_EQ(r.count(driver::JobStatus::kOk), static_cast<int>(jobs.size()));
    reports.push_back(r.to_json(/*include_volatile=*/false));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

// The canonical trace sorts events by their logical position (context
// phase, item, sequence), so the exported bytes — and the counter
// snapshot riding in the report JSON — must not depend on how the
// JobPool interleaved the jobs.
TEST(Batch, CanonicalTraceIsIdenticalAcrossThreadCounts) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with TMS_TRACE=0";
  machine::MachineModel mach;
  const std::vector<driver::BatchJob> jobs = kernel_jobs();
  driver::BatchOptions opts;
  opts.simulate_iterations = 40;

  std::vector<std::string> traces;
  std::vector<std::string> reports;
  for (const int threads : {1, 2, 8}) {
    opts.jobs = threads;
    obs::trace_enable(1u << 18);
    driver::ScheduleCache cache;  // private per run: every job schedules fresh
    const driver::BatchReport r = driver::run_batch(jobs, mach, opts, &cache);
    EXPECT_EQ(r.count(driver::JobStatus::kOk), static_cast<int>(jobs.size()));
    ASSERT_EQ(obs::trace_dropped(), 0u) << "grow the buffer: dropped events break determinism";
    traces.push_back(obs::trace_canonical_json());
    reports.push_back(r.to_json(/*include_volatile=*/false, /*include_counters=*/true));
    obs::trace_disable();
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
  EXPECT_EQ(reports[0], reports[1]) << "counter deltas must be thread-count-invariant";
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(Batch, WarmCacheSecondRunHitsEverywhere) {
  machine::MachineModel mach;
  const std::vector<driver::BatchJob> jobs = kernel_jobs();
  driver::BatchOptions opts;
  opts.jobs = 2;

  driver::ScheduleCache cache;
  const driver::BatchReport cold = driver::run_batch(jobs, mach, opts, &cache);
  EXPECT_EQ(cold.cache.hits(), 0u);
  EXPECT_EQ(cold.cache.misses, jobs.size());

  const driver::BatchReport warm = driver::run_batch(jobs, mach, opts, &cache);
  EXPECT_EQ(warm.cache.hits(), jobs.size()) << "every job must hit on the second run";
  for (const driver::JobResult& r : warm.results) {
    EXPECT_TRUE(r.cache_hit) << r.name << " (" << r.scheduler << ")";
    EXPECT_EQ(r.status, driver::JobStatus::kOk);
  }
  // Warm results agree with cold ones modulo volatile fields. Counters
  // measure work actually performed, so the warm run's are legitimately
  // smaller (nothing was scheduled) — exclude them from the comparison.
  EXPECT_EQ(cold.to_json(/*include_volatile=*/false, /*include_counters=*/false),
            warm.to_json(/*include_volatile=*/false, /*include_counters=*/false));
  EXPECT_EQ(warm.counters.value("sched.slots_tried"), 0u)
      << "a fully warm batch must not run placement trials";
  EXPECT_EQ(warm.counters.value("driver.cache_hits"), jobs.size());
}

TEST(Batch, FailuresAreIsolatedPerJob) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;

  ir::Loop malformed("zero_cycle");
  const ir::NodeId a = malformed.add_instr(ir::Opcode::kFAdd, "a");
  malformed.add_reg_flow(a, a, 0);  // zero-distance self-loop

  std::vector<driver::BatchJob> jobs;
  jobs.push_back({"good_before", test::tiny_chain(), cfg, "tms"});
  jobs.push_back({"bogus_sched", test::tiny_chain(), cfg, "bogus"});
  jobs.push_back({"zero_cycle", malformed, cfg, "tms"});
  jobs.push_back({"good_after", test::tiny_recurrence(), cfg, "sms"});

  driver::BatchOptions opts;
  opts.jobs = 2;
  const driver::BatchReport r = driver::run_batch(jobs, mach, opts, nullptr);
  ASSERT_EQ(r.results.size(), 4u);
  EXPECT_EQ(r.results[0].status, driver::JobStatus::kOk);
  EXPECT_EQ(r.results[1].status, driver::JobStatus::kError);
  EXPECT_NE(r.results[1].detail.find("unknown scheduler"), std::string::npos)
      << r.results[1].detail;
  EXPECT_EQ(r.results[2].status, driver::JobStatus::kError);
  EXPECT_NE(r.results[2].detail.find("malformed loop"), std::string::npos)
      << r.results[2].detail;
  EXPECT_EQ(r.results[3].status, driver::JobStatus::kOk);
}

TEST(Batch, SemanticallyCorruptCacheEntryIsRecomputed) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  // A recurrence forces cross-thread synchronisation, so the schedule's
  // C_delay is strictly positive and a zeroed threshold must fail it.
  const ir::Loop loop = test::tiny_recurrence();
  const std::vector<driver::BatchJob> jobs = {{"rec", loop, cfg, "tms"}};
  driver::BatchOptions opts;
  opts.jobs = 1;

  ScratchDir dir("semantic");
  const std::uint64_t key = driver::ScheduleCache::key(loop, mach, cfg, "tms");
  {
    driver::ScheduleCache cache(64, dir.path());
    const driver::BatchReport cold = driver::run_batch(jobs, mach, opts, &cache);
    ASSERT_EQ(cold.results[0].status, driver::JobStatus::kOk);

    // Tamper with the persisted entry: keep the schedule intact but set
    // an unsatisfiable TMS acceptance threshold. The entry is well-formed
    // at the format level and reconstructs into a dependence-respecting
    // schedule, so only the driver's re-validation of cache hits can
    // catch it.
    auto entry = cache.lookup(key, loop.num_instrs());
    ASSERT_TRUE(entry.has_value());
    entry->c_delay_threshold = 0;
    entry->p_max = 0.0;
    cache.insert(key, *entry);
  }

  driver::ScheduleCache cache(64, dir.path());
  const driver::BatchReport r = driver::run_batch(jobs, mach, opts, &cache);
  ASSERT_EQ(r.results[0].status, driver::JobStatus::kOk) << r.results[0].detail;
  EXPECT_FALSE(r.results[0].cache_hit) << "corrupt hit must be demoted to a recompute";
  EXPECT_EQ(cache.stats().disk_hits, 1u);

  // The recompute overwrote the bad entry: a third run hits cleanly.
  const driver::BatchReport again = driver::run_batch(jobs, mach, opts, &cache);
  EXPECT_TRUE(again.results[0].cache_hit);
  EXPECT_EQ(again.results[0].status, driver::JobStatus::kOk);
}

// --------------------------------------------------------------- TaskPool

// A task body parked on a promise: lets tests hold the pool's single
// worker busy while they probe queue admission and cancellation.
struct Blocker {
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future().share()};
  std::promise<void> started;

  std::function<void()> body() {
    return [this] {
      started.set_value();
      gate.wait();
    };
  }
};

TEST(TaskPool, RunsSubmittedTasks) {
  driver::TaskPool pool(2, 32);  // queue holds every task even if no worker has started
  std::atomic<int> ran{0};
  std::vector<std::shared_ptr<driver::TaskPool::Task>> tasks;
  for (int i = 0; i < 16; ++i) {
    auto t = pool.try_submit([&] { ran.fetch_add(1); });
    ASSERT_NE(t, nullptr);
    tasks.push_back(std::move(t));
  }
  for (const auto& t : tasks) {
    t->wait();
    EXPECT_EQ(t->state(), driver::TaskPool::TaskState::kDone);
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskPool, CancelBeforeStartSkipsBody) {
  driver::TaskPool pool(1, 4);
  Blocker blocker;
  auto front = pool.try_submit(blocker.body());
  ASSERT_NE(front, nullptr);
  blocker.started.get_future().wait();  // worker is now parked on the gate

  std::atomic<bool> ran{false};
  auto queued = pool.try_submit([&] { ran.store(true); });
  ASSERT_NE(queued, nullptr);
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kQueued);

  EXPECT_TRUE(queued->cancel());
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kCancelled);
  EXPECT_FALSE(queued->cancel()) << "second cancel must report failure";

  blocker.release.set_value();
  front->wait();
  queued->wait();  // must not hang on a cancelled task
  EXPECT_FALSE(ran.load()) << "cancelled body must never run";
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kCancelled);
}

TEST(TaskPool, CancelFailsOnceRunning) {
  driver::TaskPool pool(1, 4);
  Blocker blocker;
  auto t = pool.try_submit(blocker.body());
  ASSERT_NE(t, nullptr);
  blocker.started.get_future().wait();
  EXPECT_EQ(t->state(), driver::TaskPool::TaskState::kRunning);
  EXPECT_FALSE(t->cancel());
  blocker.release.set_value();
  t->wait();
  EXPECT_EQ(t->state(), driver::TaskPool::TaskState::kDone);
  EXPECT_FALSE(t->cancel()) << "cancel after completion must fail";
}

TEST(TaskPool, ExceptionIsCapturedAndRethrown) {
  driver::TaskPool pool(1, 4);
  auto t = pool.try_submit([] { throw std::runtime_error("task body exploded"); });
  ASSERT_NE(t, nullptr);
  t->wait();
  EXPECT_EQ(t->state(), driver::TaskPool::TaskState::kFailed);
  try {
    t->rethrow();
    FAIL() << "rethrow must throw the captured exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task body exploded");
  }

  // The worker survives the throwing task and keeps serving.
  auto next = pool.try_submit([] {});
  ASSERT_NE(next, nullptr);
  next->wait();
  EXPECT_EQ(next->state(), driver::TaskPool::TaskState::kDone);
  next->rethrow();  // no-op on success
}

TEST(TaskPool, TrySubmitRefusesWhenQueueFull) {
  driver::TaskPool pool(1, 1);
  Blocker blocker;
  auto running = pool.try_submit(blocker.body());
  ASSERT_NE(running, nullptr);
  blocker.started.get_future().wait();  // worker busy; queue empty
  EXPECT_EQ(pool.queue_depth(), 0u);

  auto queued = pool.try_submit([] {});
  ASSERT_NE(queued, nullptr);  // fills the only queue slot
  EXPECT_EQ(pool.queue_depth(), 1u);

  EXPECT_EQ(pool.try_submit([] {}), nullptr) << "queue at capacity must refuse admission";

  blocker.release.set_value();
  running->wait();
  queued->wait();
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kDone);

  // Capacity freed: admission works again.
  auto after = pool.try_submit([] {});
  ASSERT_NE(after, nullptr);
  after->wait();
}

TEST(TaskPool, WaitUntilTimesOutWhileQueued) {
  driver::TaskPool pool(1, 4);
  Blocker blocker;
  auto running = pool.try_submit(blocker.body());
  ASSERT_NE(running, nullptr);
  blocker.started.get_future().wait();

  auto queued = pool.try_submit([] {});
  ASSERT_NE(queued, nullptr);
  EXPECT_FALSE(queued->wait_until(std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(20)));
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kQueued);

  blocker.release.set_value();
  EXPECT_TRUE(queued->wait_until(std::chrono::steady_clock::now() +
                                 std::chrono::seconds(30)));
  running->wait();
}

TEST(TaskPool, ShutdownCancelQueuedDropsPendingWork) {
  driver::TaskPool pool(1, 8);
  Blocker blocker;
  auto running = pool.try_submit(blocker.body());
  ASSERT_NE(running, nullptr);
  blocker.started.get_future().wait();

  std::atomic<int> ran{0};
  auto queued = pool.try_submit([&] { ran.fetch_add(1); });
  ASSERT_NE(queued, nullptr);

  // shutdown() joins, so the blocker must be released while it waits.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    blocker.release.set_value();
  });
  pool.shutdown(driver::TaskPool::Drain::kCancelQueued);
  releaser.join();

  EXPECT_EQ(running->state(), driver::TaskPool::TaskState::kDone)
      << "in-flight task finishes even under kCancelQueued";
  EXPECT_EQ(queued->state(), driver::TaskPool::TaskState::kCancelled);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.try_submit([] {}), nullptr) << "no admission after shutdown";
  pool.shutdown(driver::TaskPool::Drain::kCancelQueued);  // idempotent
}

TEST(TaskPool, ShutdownFinishQueuedRunsEverything) {
  driver::TaskPool pool(1, 8);
  Blocker blocker;
  auto running = pool.try_submit(blocker.body());
  ASSERT_NE(running, nullptr);
  blocker.started.get_future().wait();

  std::atomic<int> ran{0};
  std::vector<std::shared_ptr<driver::TaskPool::Task>> queued;
  for (int i = 0; i < 3; ++i) {
    auto t = pool.try_submit([&] { ran.fetch_add(1); });
    ASSERT_NE(t, nullptr);
    queued.push_back(std::move(t));
  }

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    blocker.release.set_value();
  });
  pool.shutdown(driver::TaskPool::Drain::kFinishQueued);
  releaser.join();

  EXPECT_EQ(ran.load(), 3) << "graceful drain must run every queued task";
  for (const auto& t : queued) {
    EXPECT_EQ(t->state(), driver::TaskPool::TaskState::kDone);
  }
}

// ------------------------------------------------- ScheduleCache disk bound

TEST(ScheduleCache, DiskBoundEvictsOldestEntryFiles) {
  ScratchDir dir("disk_bound");
  // All entries serialise identically (same ii, same slot count, and the
  // key is a fixed-width hex name), so measure one file and budget two.
  std::uintmax_t entry_bytes = 0;
  {
    driver::ScheduleCache probe(64, dir.path());
    probe.insert(1, make_entry(4, 3));
    entry_bytes = fs::file_size(cache_file(dir.path(), 1));
    ASSERT_GT(entry_bytes, 0u);
  }
  fs::remove_all(dir.path());
  fs::create_directories(dir.path());

  driver::ScheduleCache cache(64, dir.path(), 2 * entry_bytes + 1);
  cache.insert(1, make_entry(4, 3));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.insert(2, make_entry(4, 3));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.insert(3, make_entry(4, 3));

  EXPECT_FALSE(fs::exists(cache_file(dir.path(), 1)))
      << "oldest file must be evicted to fit the byte bound";
  EXPECT_TRUE(fs::exists(cache_file(dir.path(), 2)));
  EXPECT_TRUE(fs::exists(cache_file(dir.path(), 3)));

  const driver::ScheduleCache::Stats s = cache.stats();
  EXPECT_EQ(s.disk_evictions, 1u);
  EXPECT_EQ(s.max_disk_bytes, 2 * entry_bytes + 1);
  EXPECT_LE(s.disk_bytes, s.max_disk_bytes);
  EXPECT_EQ(s.disk_bytes, 2 * entry_bytes);

  // The surviving files still load from a cold cache.
  driver::ScheduleCache cold(64, dir.path(), 2 * entry_bytes + 1);
  EXPECT_TRUE(cold.lookup(3, 3).has_value());
  EXPECT_FALSE(cold.lookup(1, 3).has_value()) << "evicted key must miss";
}

TEST(ScheduleCache, DiskBoundEnforcedAgainstPreexistingFiles) {
  ScratchDir dir("disk_rescan");
  std::uintmax_t entry_bytes = 0;
  {
    driver::ScheduleCache writer(64, dir.path());  // unbounded
    writer.insert(1, make_entry(4, 3));
    entry_bytes = fs::file_size(cache_file(dir.path(), 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    writer.insert(2, make_entry(4, 3));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    writer.insert(3, make_entry(4, 3));
    EXPECT_EQ(writer.stats().disk_evictions, 0u) << "unbounded cache never evicts";
  }

  // Reopening with a bound must sweep the leftovers down to the budget.
  driver::ScheduleCache bounded(64, dir.path(), 2 * entry_bytes + 1);
  EXPECT_FALSE(fs::exists(cache_file(dir.path(), 1)));
  EXPECT_TRUE(fs::exists(cache_file(dir.path(), 2)));
  EXPECT_TRUE(fs::exists(cache_file(dir.path(), 3)));
  EXPECT_LE(bounded.stats().disk_bytes, bounded.stats().max_disk_bytes);
  EXPECT_GE(bounded.stats().disk_evictions, 1u);
}

TEST(ScheduleCache, ZeroDiskBoundMeansUnbounded) {
  ScratchDir dir("disk_unbounded");
  driver::ScheduleCache cache(64, dir.path(), 0);
  for (std::uint64_t k = 1; k <= 8; ++k) cache.insert(k, make_entry(4, 3));
  for (std::uint64_t k = 1; k <= 8; ++k) {
    EXPECT_TRUE(fs::exists(cache_file(dir.path(), k))) << "key " << k;
  }
  EXPECT_EQ(cache.stats().disk_evictions, 0u);
}

// ---------------------------------------------------- batch exit contract

// tmsbatch exits non-zero iff any job failed; the expression it uses is
// `count(kOk) == results.size()`. Pin the report-side arithmetic here so
// the tool-level contract (docs/DRIVER.md) can't silently drift.
TEST(Batch, ReportCountsFeedTheExitCodeContract) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::vector<driver::BatchJob> jobs;
  jobs.push_back({"ok_job", test::tiny_chain(), cfg, "tms"});
  jobs.push_back({"bad_job", test::tiny_chain(), cfg, "bogus"});

  driver::BatchOptions opts;
  opts.jobs = 1;
  const driver::BatchReport r = driver::run_batch(jobs, mach, opts, nullptr);
  ASSERT_EQ(r.results.size(), 2u);
  EXPECT_EQ(r.count(driver::JobStatus::kOk), 1);
  EXPECT_NE(static_cast<std::size_t>(r.count(driver::JobStatus::kOk)), r.results.size())
      << "a failing job must make the all-ok exit predicate false";

  std::vector<driver::BatchJob> good(jobs.begin(), jobs.begin() + 1);
  const driver::BatchReport ok = driver::run_batch(good, mach, opts, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(ok.count(driver::JobStatus::kOk)), ok.results.size())
      << "an all-ok report must make the exit predicate true";
}

}  // namespace
}  // namespace tms
