#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "ir/graph.hpp"
#include "ir/unroll.hpp"
#include "sched/mii.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::ir {
namespace {

TEST(Unroll, FactorOneIsStructuralIdentity) {
  const Loop loop = workloads::figure1_loop();
  const Loop u1 = unroll(loop, 1);
  EXPECT_EQ(u1.num_instrs(), loop.num_instrs());
  ASSERT_EQ(u1.deps().size(), loop.deps().size());
  for (std::size_t i = 0; i < loop.deps().size(); ++i) {
    EXPECT_EQ(u1.dep(i).src, loop.dep(i).src);
    EXPECT_EQ(u1.dep(i).dst, loop.dep(i).dst);
    EXPECT_EQ(u1.dep(i).distance, loop.dep(i).distance);
  }
}

TEST(Unroll, SizesScale) {
  const Loop loop = workloads::figure1_loop();
  for (const int u : {2, 3, 4}) {
    const Loop lu = unroll(loop, u);
    EXPECT_EQ(lu.num_instrs(), u * loop.num_instrs());
    EXPECT_EQ(lu.deps().size(), static_cast<std::size_t>(u) * loop.deps().size());
    EXPECT_FALSE(lu.validate().has_value());
  }
}

TEST(Unroll, DistanceOneBecomesIntraBodyExceptWrap) {
  // acc -> acc (d=1) unrolled by 4: copies 1..3 consume the previous copy
  // at distance 0; copy 0 consumes copy 3 of the previous unrolled
  // iteration (distance 1).
  const Loop loop = test::tiny_recurrence();
  const Loop u4 = unroll(loop, 4);
  int intra = 0;
  int cross = 0;
  for (const DepEdge& e : u4.deps()) {
    if (u4.instr(e.src).op == Opcode::kFAdd && u4.instr(e.dst).op == Opcode::kFAdd) {
      (e.distance == 0 ? intra : cross) += 1;
    }
  }
  EXPECT_EQ(intra, 3);
  EXPECT_EQ(cross, 1);
}

TEST(Unroll, RecurrenceDelayScalesWithFactor) {
  machine::MachineModel mach;
  const Loop loop = test::tiny_recurrence();  // RecII 2 (fadd self, d=1)
  for (const int u : {2, 4}) {
    const Loop lu = unroll(loop, u);
    EXPECT_EQ(sched::rec_ii(lu, mach), 2 * u);
  }
}

TEST(Unroll, LargerDistancesDecompose) {
  Loop loop("d3");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, b, 3);
  const Loop u2 = unroll(loop, 2);
  // Consumer copy 0: off=-3 -> producer copy 1, distance 2.
  // Consumer copy 1: off=-2 -> producer copy 0, distance 1.
  bool saw_c0 = false;
  bool saw_c1 = false;
  for (const DepEdge& e : u2.deps()) {
    if (e.dst == unrolled_id(loop, b, 0)) {
      EXPECT_EQ(e.src, unrolled_id(loop, a, 1));
      EXPECT_EQ(e.distance, 2);
      saw_c0 = true;
    }
    if (e.dst == unrolled_id(loop, b, 1)) {
      EXPECT_EQ(e.src, unrolled_id(loop, a, 0));
      EXPECT_EQ(e.distance, 1);
      saw_c1 = true;
    }
  }
  EXPECT_TRUE(saw_c0);
  EXPECT_TRUE(saw_c1);
}

TEST(Unroll, SchedulableAndSemanticallySound) {
  // The unrolled loop is a loop like any other: scheduling and simulating
  // it must satisfy the golden rule against its own reference semantics.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const Loop base = workloads::figure1_loop();
  const Loop lu = unroll(base, 2);
  const auto sms = sched::sms_schedule(lu, workloads::figure1_machine());
  ASSERT_TRUE(sms.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(lu, 31);
  const auto kp = codegen::lower_kernel(sms->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 300;
  opts.keep_memory = true;
  const auto sim = spmt::run_spmt(lu, kp, cfg, streams, opts);
  const auto ref = spmt::run_reference(lu, streams, opts.iterations);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);
}

TEST(Unroll, ReducesCommunicationPerSourceIteration) {
  // The extension's whole point: unrolling turns distance-1 dependences
  // intra-thread, reducing SEND/RECV pairs per *source* iteration.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const Loop base = workloads::figure1_loop();
  double pairs_per_src_u1 = 0;
  double pairs_per_src_u4 = 0;
  for (const int u : {1, 4}) {
    const Loop lu = unroll(base, u);
    const auto tms = sched::tms_schedule(lu, workloads::figure1_machine(), cfg);
    ASSERT_TRUE(tms.has_value());
    const sched::CommPlan plan = sched::plan_communication(tms->schedule);
    const double per_src = static_cast<double>(plan.comm_pairs_per_iter) / u;
    (u == 1 ? pairs_per_src_u1 : pairs_per_src_u4) = per_src;
  }
  EXPECT_LT(pairs_per_src_u4, pairs_per_src_u1);
}

}  // namespace
}  // namespace tms::ir
