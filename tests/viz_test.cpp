#include <gtest/gtest.h>

#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "viz/render.hpp"
#include "workloads/figure1.hpp"

namespace tms::viz {
namespace {

class VizTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop = workloads::figure1_loop();
    mach = workloads::figure1_machine();
    sms = sched::sms_schedule(loop, mach);
    ASSERT_TRUE(sms.has_value());
  }
  ir::Loop loop;
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::optional<sched::SmsResult> sms;
};

TEST_F(VizTest, FlatScheduleMentionsEveryInstruction) {
  const std::string out = render_flat_schedule(sms->schedule);
  for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    EXPECT_NE(out.find(loop.instr(v).name), std::string::npos) << loop.instr(v).name;
  }
  EXPECT_NE(out.find("II=8"), std::string::npos);
}

TEST_F(VizTest, KernelShowsRowsAndSyncDelays) {
  const std::string out = render_kernel(sms->schedule, cfg);
  EXPECT_NE(out.find("row 0"), std::string::npos);
  EXPECT_NE(out.find("sync="), std::string::npos);
  EXPECT_NE(out.find("inter-thread register dependences"), std::string::npos);
}

TEST_F(VizTest, ExecutionTimelineHasOneLinePerThread) {
  const std::string out = render_execution(sms->schedule, cfg, 5);
  int threads = 0;
  for (std::size_t pos = 0; (pos = out.find("thread", pos)) != std::string::npos; ++pos) {
    ++threads;
  }
  EXPECT_GE(threads, 5);
}

TEST_F(VizTest, DotOutputIsWellFormed) {
  const std::string out = render_ddg_dot(loop);
  EXPECT_EQ(out.find("digraph"), 0u);
  EXPECT_NE(out.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(out.find("style=dashed"), std::string::npos);  // memory deps dashed
  EXPECT_NE(out.rfind("}\n"), std::string::npos);
}

}  // namespace
}  // namespace tms::viz
