// Cross-module integration tests: schedule -> lower -> simulate, checking
// that the Section-4.2 cost model actually predicts the simulator, that
// the full suite pipeline holds its invariants end to end, and that the
// documented failure-handling paths (write-buffer overflow, re-execution
// cap) behave.
#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"
#include "test_util.hpp"
#include "workloads/doacross.hpp"
#include "workloads/figure1.hpp"
#include "workloads/spec_suite.hpp"

namespace tms {
namespace {

/// Steady-state cycles/iteration, measured by differencing two run
/// lengths so startup transients cancel.
double steady_per_iter(const ir::Loop& loop, const sched::Schedule& s,
                       const machine::SpmtConfig& cfg, std::uint64_t seed) {
  const spmt::AddressStreams streams = spmt::default_streams(loop, seed);
  const auto kp = codegen::lower_kernel(s, cfg);
  spmt::SpmtOptions opts;
  opts.keep_memory = false;
  opts.iterations = 1500;
  const auto a = spmt::run_spmt(loop, kp, cfg, streams, opts);
  opts.iterations = 3000;
  const auto b = spmt::run_spmt(loop, kp, cfg, streams, opts);
  return static_cast<double>(b.stats.total_cycles - a.stats.total_cycles) / 1500.0;
}

TEST(CostModelIntegration, PredictsSteadyStateWithinTolerance) {
  // On loops without misspeculation and with warm caches, the measured
  // steady-state rate must track F(II, C_delay) closely: F is both a
  // lower bound (up to rounding) and a good estimate.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  int checked = 0;
  for (std::uint64_t seed = 4000; seed < 4020; ++seed) {
    ir::Loop loop = test::random_loop(seed);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value());
    if (tms->schedule.misspec_probability(cfg) > 0.0) continue;  // isolate T_nomiss
    const double predicted =
        cost::per_iter_nomiss(tms->schedule.ii(), tms->schedule.c_delay(cfg), cfg);
    const double measured = steady_per_iter(loop, tms->schedule, cfg, seed);
    EXPECT_GE(measured, predicted - 1.0) << "seed " << seed;
    EXPECT_LE(measured, 2.0 * predicted + 8.0) << "seed " << seed;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(CostModelIntegration, Figure1TracksModelClosely) {
  const ir::Loop loop = workloads::figure1_loop(0.001);  // negligible misspec
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value() && tms.has_value());
  const double f_sms = cost::per_iter_nomiss(sms->schedule.ii(), sms->schedule.c_delay(cfg), cfg);
  const double f_tms = cost::per_iter_nomiss(tms->schedule.ii(), tms->schedule.c_delay(cfg), cfg);
  const double m_sms = steady_per_iter(loop, sms->schedule, cfg, 9);
  const double m_tms = steady_per_iter(loop, tms->schedule, cfg, 9);
  EXPECT_NEAR(m_sms, f_sms, 0.35 * f_sms + 1.0);
  EXPECT_NEAR(m_tms, f_tms, 0.35 * f_tms + 1.0);
  // And the ordering carries over: the model says TMS is faster here,
  // the simulator must agree.
  EXPECT_LT(f_tms, f_sms);
  EXPECT_LT(m_tms, m_sms);
}

TEST(SuiteIntegration, SampledLoopsSatisfyAllInvariantsEndToEnd) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  const auto suite = workloads::spec_fp2000_suite();
  int loops_checked = 0;
  for (std::size_t b = 0; b < suite.size(); ++b) {
    if (suite[b].name == "lucas") continue;  // large bodies: covered by benches
    auto loops = workloads::generate_benchmark(suite[b]);
    // First loop of each benchmark family.
    ir::Loop loop = std::move(loops.front());
    const auto sms = sched::sms_schedule(loop, mach);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(sms.has_value() && tms.has_value()) << suite[b].name;
    for (const auto* s : {&sms->schedule, &tms->schedule}) {
      EXPECT_FALSE(s->validate().has_value());
      const spmt::AddressStreams streams = spmt::default_streams(loop, 1234 + b);
      const auto kp = codegen::lower_kernel(*s, cfg);
      spmt::SpmtOptions opts;
      opts.iterations = 200;
      opts.keep_memory = true;
      const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
      const auto ref = spmt::run_reference(loop, streams, opts.iterations);
      EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << suite[b].name;
      EXPECT_EQ(sim.memory.size(), ref.memory.size()) << suite[b].name;
    }
    ++loops_checked;
  }
  EXPECT_EQ(loops_checked, 12);
}

TEST(SelectedLoopsIntegration, GoldenRuleOnTable3Loops) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  for (auto& sel : workloads::doacross_selected_loops()) {
    const ir::Loop loop = std::move(sel.loop);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value()) << loop.name();
    const spmt::AddressStreams streams = spmt::default_streams(loop, 55);
    const auto kp = codegen::lower_kernel(tms->schedule, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = 250;
    opts.keep_memory = true;
    const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
    const auto ref = spmt::run_reference(loop, streams, opts.iterations);
    EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << loop.name();
  }
}

TEST(FailureInjection, WriteBufferOverflowSerialisesButStaysCorrect) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.spec_write_buffer_entries = 1;  // every loop with 2+ stores overflows
  ir::Loop loop("wb");
  const ir::NodeId ind = loop.add_instr(ir::Opcode::kIAdd, "ind");
  loop.add_reg_flow(ind, ind, 1);
  for (int k = 0; k < 3; ++k) {
    const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
    loop.add_reg_flow(ind, st, 0);
  }
  const auto sms = sched::sms_schedule(loop, mach);
  ASSERT_TRUE(sms.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 66);
  const auto kp = codegen::lower_kernel(sms->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 300;
  opts.keep_memory = true;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_EQ(sim.stats.wb_overflow_waits, sim.stats.threads_committed);
  const auto ref = spmt::run_reference(loop, streams, opts.iterations);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);

  // The same loop without the overflow must be strictly faster.
  machine::SpmtConfig roomy;
  const auto fast = spmt::run_spmt(loop, kp, roomy, streams, opts);
  EXPECT_LT(fast.stats.total_cycles, sim.stats.total_cycles);
}

TEST(FailureInjection, ReexecutionCapFallsBackToHeadExecution) {
  // A pathological always-colliding dependence with the consumer placed
  // impossibly early: each attempt re-violates until the thread runs as
  // head. Semantics must survive.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  ir::Loop loop("cap");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  loop.add_mem_flow(st, ld, 1, 1.0);
  sched::Schedule s(loop, mach, 16);
  s.set_slot(st, 15);
  s.set_slot(ld, 0);
  ASSERT_FALSE(s.validate().has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 7);
  const auto kp = codegen::lower_kernel(s, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 200;
  opts.keep_memory = true;
  opts.max_reexecutions = 1;
  const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_GT(sim.stats.misspeculations, 0);
  const auto ref = spmt::run_reference(loop, streams, opts.iterations);
  EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint);
}

TEST(FailureInjection, DisableSpeculationCostsTlp) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  auto sel = workloads::doacross_selected_loops();
  const ir::Loop loop = std::move(sel[0].loop);  // art: speculation-sensitive
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(tms.has_value());
  const spmt::AddressStreams streams = spmt::default_streams(loop, 8);
  const auto kp = codegen::lower_kernel(tms->schedule, cfg);
  spmt::SpmtOptions opts;
  opts.iterations = 800;
  opts.keep_memory = false;
  const auto on = spmt::run_spmt(loop, kp, cfg, streams, opts);
  opts.disable_speculation = true;
  const auto off = spmt::run_spmt(loop, kp, cfg, streams, opts);
  EXPECT_EQ(off.stats.misspeculations, 0);
  EXPECT_GT(off.stats.spec_wait_cycles, 0);
  EXPECT_GE(off.stats.total_cycles, on.stats.total_cycles);
}

}  // namespace
}  // namespace tms
