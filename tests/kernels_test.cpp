#include <gtest/gtest.h>

#include "codegen/kernel_program.hpp"
#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"
#include "workloads/kernels.hpp"

namespace tms::workloads {
namespace {

TEST(Kernels, CollectionIsWellFormed) {
  const auto ks = classic_kernels();
  ASSERT_EQ(ks.size(), 8u);
  for (const Kernel& k : ks) {
    EXPECT_FALSE(k.loop.validate().has_value()) << k.loop.name();
    EXPECT_FALSE(k.description.empty());
    EXPECT_GT(k.loop.coverage(), 0.0);
  }
}

TEST(Kernels, RecurrenceStructureAsDocumented) {
  machine::MachineModel mach;
  const auto ks = classic_kernels();
  auto find = [&](const char* name) -> const Kernel& {
    for (const Kernel& k : ks) {
      if (k.loop.name() == name) return k;
    }
    ADD_FAILURE() << "kernel " << name << " missing";
    return ks.front();
  };
  // hydro: DOALL apart from the induction variable.
  EXPECT_EQ(ir::count_nontrivial_sccs(find("hydro").loop), 1);
  // inner product: induction + accumulator.
  EXPECT_EQ(ir::count_nontrivial_sccs(find("inner_prod").loop), 2);
  // tridiag: the sub/mul recurrence raises RecII above the accumulator's.
  EXPECT_GE(sched::rec_ii(find("tridiag").loop, mach), 4);
  // first_sum: RecII = lat(fadd) = 2.
  EXPECT_EQ(sched::rec_ii(find("first_sum").loop, mach), 2);
  // fir: sliding window has no recurrence beyond the induction.
  EXPECT_EQ(ir::count_nontrivial_sccs(find("fir4").loop), 1);
  // adi: two coupled recurrences + induction.
  EXPECT_EQ(ir::count_nontrivial_sccs(find("adi_sweep").loop), 3);
}

TEST(Kernels, AllScheduleAndRunGolden) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  for (Kernel& k : classic_kernels()) {
    const ir::Loop loop = std::move(k.loop);
    const auto sms = sched::sms_schedule(loop, mach);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(sms.has_value() && tms.has_value()) << loop.name();
    const spmt::AddressStreams streams = spmt::default_streams(loop, 17);
    const auto ref = spmt::run_reference(loop, streams, 200);
    for (const auto* s : {&sms->schedule, &tms->schedule}) {
      spmt::SpmtOptions opts;
      opts.iterations = 200;
      opts.keep_memory = true;
      const auto sim = spmt::run_spmt(loop, codegen::lower_kernel(*s, cfg), cfg, streams, opts);
      EXPECT_EQ(sim.value_fingerprint, ref.value_fingerprint) << loop.name();
    }
  }
}

TEST(Kernels, TmsBeatsSmsOnTheDoallKernels) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  for (Kernel& k : classic_kernels()) {
    if (k.loop.name() != "hydro" && k.loop.name() != "state_frag") continue;
    const ir::Loop loop = std::move(k.loop);
    const auto sms = sched::sms_schedule(loop, mach);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(sms.has_value() && tms.has_value());
    // On DOALL-ish kernels the only cross-thread values are the induction
    // chain and stage crossings: C_delay must sit at the communication
    // floor, far below SMS's.
    EXPECT_LE(tms->schedule.c_delay(cfg), cfg.min_c_delay() + 3) << loop.name();
    EXPECT_LT(tms->schedule.c_delay(cfg), sms->schedule.c_delay(cfg)) << loop.name();
  }
}

TEST(Kernels, FirstSumIsRecurrenceBound) {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  for (Kernel& k : classic_kernels()) {
    if (k.loop.name() != "first_sum") continue;
    const ir::Loop loop = std::move(k.loop);
    const auto tms = sched::tms_schedule(loop, mach, cfg);
    ASSERT_TRUE(tms.has_value());
    // The prefix-sum chain forces a cross-thread sync of at least
    // lat(fadd) + C_reg_com on the carried value.
    EXPECT_GE(tms->schedule.c_delay(cfg), 2 + cfg.c_reg_com);
  }
}

}  // namespace
}  // namespace tms::workloads
