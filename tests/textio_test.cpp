#include <gtest/gtest.h>

#include <fstream>

#include "ir/textio.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::ir {
namespace {

Loop expect_parse(const std::string& text) {
  auto r = parse_loop_string(text);
  const auto* err = std::get_if<ParseError>(&r);
  EXPECT_EQ(err, nullptr) << (err != nullptr ? err->message : "");
  return std::get<Loop>(std::move(r));
}

ParseError expect_error(const std::string& text) {
  auto r = parse_loop_string(text);
  const auto* err = std::get_if<ParseError>(&r);
  EXPECT_NE(err, nullptr) << "expected a parse error";
  return err != nullptr ? *err : ParseError{};
}

TEST(TextIo, ParsesMinimalLoop) {
  const Loop loop = expect_parse(
      "loop tiny\n"
      "instr a load\n"
      "instr b fadd\n"
      "reg a b 0\n");
  EXPECT_EQ(loop.name(), "tiny");
  EXPECT_EQ(loop.num_instrs(), 2);
  ASSERT_EQ(loop.deps().size(), 1u);
  EXPECT_EQ(loop.dep(0).distance, 0);
  EXPECT_EQ(loop.instr(0).op, Opcode::kLoad);
}

TEST(TextIo, ParsesCommentsAndBlankLines) {
  const Loop loop = expect_parse(
      "# header comment\n"
      "loop c\n"
      "\n"
      "instr x iadd   # trailing comment\n"
      "reg x x 1\n");
  EXPECT_EQ(loop.num_instrs(), 1);
}

TEST(TextIo, ParsesMemDepsWithProbability) {
  const Loop loop = expect_parse(
      "loop m\n"
      "instr s store\n"
      "instr l load\n"
      "mem s l 2 0.25\n");
  ASSERT_EQ(loop.deps().size(), 1u);
  EXPECT_EQ(loop.dep(0).kind, DepKind::kMemory);
  EXPECT_EQ(loop.dep(0).distance, 2);
  EXPECT_DOUBLE_EQ(loop.dep(0).probability, 0.25);
}

TEST(TextIo, ParsesDepTypes) {
  const Loop loop = expect_parse(
      "loop t\n"
      "instr a iadd\n"
      "instr b iadd\n"
      "reg a b 0 anti\n"
      "reg b a 1 output\n");
  EXPECT_EQ(loop.dep(0).type, DepType::kAnti);
  EXPECT_EQ(loop.dep(1).type, DepType::kOutput);
}

TEST(TextIo, ParsesLiveInsAndCoverage) {
  const Loop loop = expect_parse(
      "loop lc\n"
      "coverage 0.4\n"
      "instr a fadd\n"
      "reg a a 1\n"
      "livein a\n");
  EXPECT_DOUBLE_EQ(loop.coverage(), 0.4);
  ASSERT_EQ(loop.live_ins().size(), 1u);
}

TEST(TextIo, ErrorsNameTheLine) {
  EXPECT_EQ(expect_error("loop x\ninstr a bogus_op\n").line, 2);
  EXPECT_EQ(expect_error("loop x\ninstr a iadd\nreg a missing 0\n").line, 3);
  EXPECT_EQ(expect_error("loop x\ninstr a iadd\ninstr a iadd\n").line, 3);
  EXPECT_EQ(expect_error("loop x\ninstr s store\ninstr l load\nmem s l 1\n").line, 4);
  EXPECT_EQ(expect_error("frobnicate\n").line, 1);
}

TEST(TextIo, RejectsStructurallyInvalidLoops) {
  // Distance-0 cycle caught by Loop::validate at end of parse.
  const ParseError e = expect_error(
      "loop bad\n"
      "instr a iadd\n"
      "instr b iadd\n"
      "reg a b 0\n"
      "reg b a 0\n");
  EXPECT_NE(e.message.find("invalid loop"), std::string::npos);
}

TEST(TextIo, RejectsMissingHeader) {
  const ParseError e = expect_error("instr a iadd\n");
  (void)e;
}

TEST(TextIo, RoundTripsFigure1) {
  const Loop orig = workloads::figure1_loop();
  const Loop back = expect_parse(serialise_loop(orig));
  ASSERT_EQ(back.num_instrs(), orig.num_instrs());
  ASSERT_EQ(back.deps().size(), orig.deps().size());
  for (std::size_t i = 0; i < orig.deps().size(); ++i) {
    EXPECT_EQ(back.dep(i).src, orig.dep(i).src);
    EXPECT_EQ(back.dep(i).dst, orig.dep(i).dst);
    EXPECT_EQ(back.dep(i).kind, orig.dep(i).kind);
    EXPECT_EQ(back.dep(i).type, orig.dep(i).type);
    EXPECT_EQ(back.dep(i).distance, orig.dep(i).distance);
    EXPECT_DOUBLE_EQ(back.dep(i).probability, orig.dep(i).probability);
  }
  EXPECT_EQ(back.live_ins(), orig.live_ins());
  EXPECT_DOUBLE_EQ(back.coverage(), orig.coverage());
}

TEST(TextIo, RoundTripsRandomLoops) {
  // Full structural round-trip property: parse(print(loop)) == loop,
  // field by field. Probabilities are printed at default stream
  // precision (~6 significant digits), so they round-trip approximately
  // — but a second print must reproduce the first byte for byte.
  for (std::uint64_t seed = 700; seed < 740; ++seed) {
    const Loop orig = test::random_loop(seed);
    const std::string text = serialise_loop(orig);
    const Loop back = expect_parse(text);

    EXPECT_EQ(back.name(), orig.name());
    ASSERT_EQ(back.num_instrs(), orig.num_instrs());
    for (NodeId v = 0; v < orig.num_instrs(); ++v) {
      EXPECT_EQ(back.instr(v).op, orig.instr(v).op) << "seed " << seed << " node " << v;
      EXPECT_EQ(back.instr(v).name, orig.instr(v).name);
    }
    ASSERT_EQ(back.deps().size(), orig.deps().size());
    for (std::size_t i = 0; i < orig.deps().size(); ++i) {
      EXPECT_EQ(back.dep(i).src, orig.dep(i).src) << "seed " << seed << " dep " << i;
      EXPECT_EQ(back.dep(i).dst, orig.dep(i).dst);
      EXPECT_EQ(back.dep(i).kind, orig.dep(i).kind);
      EXPECT_EQ(back.dep(i).type, orig.dep(i).type);
      EXPECT_EQ(back.dep(i).distance, orig.dep(i).distance);
      EXPECT_NEAR(back.dep(i).probability, orig.dep(i).probability, 1e-5);
    }
    EXPECT_EQ(back.live_ins(), orig.live_ins());
    EXPECT_NEAR(back.coverage(), orig.coverage(), 1e-5);
    EXPECT_EQ(serialise_loop(back), text) << "seed " << seed << ": print not a fixpoint";
  }
}

TEST(TextIo, ShippedExampleFilesParse) {
  for (const char* path :
       {"examples/loops/dotprod.loop", "examples/loops/stencil.loop"}) {
    std::ifstream f(std::string(TMS_SOURCE_DIR) + "/" + path);
    ASSERT_TRUE(f.good()) << path;
    auto r = parse_loop(f);
    EXPECT_EQ(std::get_if<ParseError>(&r), nullptr) << path;
  }
}

}  // namespace
}  // namespace tms::ir
