#include <gtest/gtest.h>

#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

TEST(CommPlan, SharedProducerOneChannel) {
  // Figure 2's observation: n6->n0 and n6->n6 share one producer, so one
  // communication channel suffices.
  machine::MachineModel mach;
  Loop loop("l");
  const NodeId p = loop.add_instr(Opcode::kIAdd);
  const NodeId c1 = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(p, c1, 1);
  loop.add_reg_flow(p, p, 1);
  Schedule s(loop, mach, 4);
  s.set_slot(p, 0);
  s.set_slot(c1, 1);
  const CommPlan plan = plan_communication(s);
  ASSERT_EQ(plan.channels.size(), 1u);
  EXPECT_EQ(plan.channels[0].producer, p);
  EXPECT_EQ(plan.channels[0].hops, 1);
  EXPECT_EQ(plan.channels[0].consumers.size(), 2u);
  EXPECT_EQ(plan.comm_pairs_per_iter, 1);
  EXPECT_EQ(plan.copies_per_iter, 0);
}

TEST(CommPlan, MultiHopNeedsCopies) {
  machine::MachineModel mach;
  Loop loop("l");
  const NodeId p = loop.add_instr(Opcode::kIAdd);
  const NodeId c = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(p, c, 3);  // consumed three iterations later
  Schedule s(loop, mach, 4);
  s.set_slot(p, 0);
  s.set_slot(c, 1);  // same stage: d_ker = 3
  const CommPlan plan = plan_communication(s);
  ASSERT_EQ(plan.channels.size(), 1u);
  EXPECT_EQ(plan.channels[0].hops, 3);
  EXPECT_EQ(plan.copies_per_iter, 2);      // hops - 1 register copies
  EXPECT_EQ(plan.comm_pairs_per_iter, 3);  // one SEND/RECV per hop
}

TEST(CommPlan, IntraIterationDepsExcluded) {
  machine::MachineModel mach;
  const Loop loop = test::tiny_chain();
  Schedule s(loop, mach, 4);
  s.set_slot(0, 0);
  s.set_slot(1, 3);
  const CommPlan plan = plan_communication(s);
  EXPECT_TRUE(plan.channels.empty());
  EXPECT_EQ(plan.comm_pairs_per_iter, 0);
}

TEST(Measure, CollectsAllMetrics) {
  const Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto r = sms_schedule(loop, mach);
  ASSERT_TRUE(r.has_value());
  const LoopMetrics m = measure(r->schedule, cfg);
  EXPECT_EQ(m.num_instrs, 9);
  EXPECT_EQ(m.num_sccs, 4);
  EXPECT_EQ(m.mii, 8);
  EXPECT_EQ(m.ii, r->schedule.ii());
  EXPECT_GT(m.ldp, 0);
  EXPECT_GE(m.max_live, 1);
  EXPECT_GT(m.c_delay, 0);
  EXPECT_GE(m.comm_pairs, 1);
  EXPECT_GE(m.misspec_probability, 0.0);
}

TEST(Measure, TmsVsSmsShapeOnFigure1) {
  // Table 2's shape on the motivating example: TMS trades II up for a
  // much smaller C_delay.
  const Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  const auto sms = sms_schedule(loop, mach);
  const auto tms = tms_schedule(loop, mach, cfg);
  ASSERT_TRUE(sms.has_value() && tms.has_value());
  const LoopMetrics ms = measure(sms->schedule, cfg);
  const LoopMetrics mt = measure(tms->schedule, cfg);
  EXPECT_GE(mt.ii, ms.ii);
  EXPECT_LT(mt.c_delay, ms.c_delay);
}

}  // namespace
}  // namespace tms::sched
