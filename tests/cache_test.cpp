#include <gtest/gtest.h>

#include "spmt/cache.hpp"

namespace tms::spmt {
namespace {

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(4, 2, 64);
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1030));  // same 64B line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  // 1 set x 2 ways: three distinct lines thrash.
  SetAssocCache c(1, 2, 64);
  EXPECT_FALSE(c.access(0x0));
  EXPECT_FALSE(c.access(0x40));
  EXPECT_TRUE(c.access(0x0));    // refresh LRU of line 0
  EXPECT_FALSE(c.access(0x80));  // evicts 0x40 (LRU)
  EXPECT_TRUE(c.access(0x0));
  EXPECT_FALSE(c.access(0x40));  // was evicted
}

TEST(SetAssocCache, SetsIsolateLines) {
  SetAssocCache c(2, 1, 64);
  EXPECT_FALSE(c.access(0x00));   // set 0
  EXPECT_FALSE(c.access(0x40));   // set 1
  EXPECT_TRUE(c.access(0x00));
  EXPECT_TRUE(c.access(0x40));
}

TEST(SetAssocCache, ContainsDoesNotAllocate) {
  SetAssocCache c(4, 2, 64);
  EXPECT_FALSE(c.contains(0x2000));
  EXPECT_FALSE(c.contains(0x2000));  // still absent
  c.access(0x2000);
  EXPECT_TRUE(c.contains(0x2000));
}

TEST(SetAssocCache, InvalidateAll) {
  SetAssocCache c(4, 2, 64);
  c.access(0x100);
  c.invalidate_all();
  EXPECT_FALSE(c.contains(0x100));
}

TEST(MemoryHierarchy, Table1Latencies) {
  machine::SpmtConfig cfg;
  MemoryHierarchy h(cfg, cfg.ncore);
  // Cold: L1 miss + L2 miss -> memory.
  EXPECT_EQ(h.access_latency(0, 0x5000, false), cfg.l1d_hit + cfg.l2_miss);
  // Warm in both.
  EXPECT_EQ(h.access_latency(0, 0x5000, false), cfg.l1d_hit);
  // Another core: misses its private L1, hits shared L2.
  EXPECT_EQ(h.access_latency(1, 0x5000, false), cfg.l1d_hit + cfg.l2_hit);
}

TEST(MemoryHierarchy, StoresChargeOnlyL1Probe) {
  machine::SpmtConfig cfg;
  MemoryHierarchy h(cfg, 1);
  EXPECT_EQ(h.access_latency(0, 0x9000, true), 1);
  EXPECT_EQ(h.access_latency(0, 0x9000, true), 1);
}

TEST(MemoryHierarchy, PerCoreL1Stats) {
  machine::SpmtConfig cfg;
  MemoryHierarchy h(cfg, 2);
  h.access_latency(0, 0x100, false);
  h.access_latency(0, 0x100, false);
  h.access_latency(1, 0x100, false);
  EXPECT_EQ(h.l1_misses(0), 1u);
  EXPECT_EQ(h.l1_hits(0), 1u);
  EXPECT_EQ(h.l1_misses(1), 1u);
  EXPECT_EQ(h.l2_hits(), 1u);  // core 1 found it in shared L2
}

}  // namespace
}  // namespace tms::spmt
