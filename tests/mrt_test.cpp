#include <gtest/gtest.h>

#include "sched/mrt.hpp"

namespace tms::sched {
namespace {

using ir::Opcode;

TEST(Mrt, RowOfHandlesNegativeCycles) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 5);
  EXPECT_EQ(mrt.row_of(0), 0);
  EXPECT_EQ(mrt.row_of(7), 2);
  EXPECT_EQ(mrt.row_of(-1), 4);
  EXPECT_EQ(mrt.row_of(-5), 0);
  EXPECT_EQ(mrt.row_of(-7), 3);
}

TEST(Mrt, FuLimitEnforced) {
  machine::MachineModel mach;  // 1 memory port
  ModuloReservationTable mrt(mach, 4);
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 2));
  mrt.place(Opcode::kLoad, 2);
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 2));
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 6));  // same row mod 4
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 3));
}

TEST(Mrt, TwoIaluUnits) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 3);
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_TRUE(mrt.can_place(Opcode::kIAdd, 0));
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_FALSE(mrt.can_place(Opcode::kIAdd, 0));
}

TEST(Mrt, IssueWidthEnforcedAcrossClasses) {
  machine::MachineModel mach;
  mach.set_issue_width(2);
  ModuloReservationTable mrt(mach, 4);
  mrt.place(Opcode::kIAdd, 1);
  mrt.place(Opcode::kFAdd, 1);
  // Different FU class but issue bandwidth at row 1 is exhausted.
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 1));
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 2));
}

TEST(Mrt, OccupancyWrapsAroundTable) {
  machine::MachineModel mach;
  machine::MachineModel custom;
  custom.set_timing(Opcode::kFMul, {4, 4});
  ModuloReservationTable mrt(custom, 3);
  // Occupancy 4 > II 3: cannot place at all.
  EXPECT_FALSE(mrt.can_place(Opcode::kFMul, 0));
  ModuloReservationTable mrt4(custom, 4);
  EXPECT_TRUE(mrt4.can_place(Opcode::kFMul, 1));
  mrt4.place(Opcode::kFMul, 1);
  // The single FP-mul unit is now busy on every row.
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(mrt4.can_place(Opcode::kFMul, c));
}

TEST(Mrt, RemoveRestoresCapacity) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 4);
  mrt.place(Opcode::kLoad, 1);
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 1));
  mrt.remove(Opcode::kLoad, 1);
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 1));
}

TEST(Mrt, ZeroResourceOpsAlwaysFit) {
  machine::MachineModel mach;
  mach.set_issue_width(1);
  ModuloReservationTable mrt(mach, 1);
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_TRUE(mrt.can_place(Opcode::kNop, 0));  // FuClass::kNone
}

TEST(Mrt, UsageCountersTrack) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 2);
  EXPECT_EQ(mrt.issue_used(0), 0);
  mrt.place(Opcode::kIAdd, 0);
  mrt.place(Opcode::kLoad, 0);
  EXPECT_EQ(mrt.issue_used(0), 2);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kIAlu, 0), 1);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kMem, 0), 1);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kMem, 1), 0);
}

}  // namespace
}  // namespace tms::sched
