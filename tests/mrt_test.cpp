#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sched/mrt.hpp"

namespace tms::sched {
namespace {

using ir::Opcode;

TEST(Mrt, RowOfHandlesNegativeCycles) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 5);
  EXPECT_EQ(mrt.row_of(0), 0);
  EXPECT_EQ(mrt.row_of(7), 2);
  EXPECT_EQ(mrt.row_of(-1), 4);
  EXPECT_EQ(mrt.row_of(-5), 0);
  EXPECT_EQ(mrt.row_of(-7), 3);
}

TEST(Mrt, FuLimitEnforced) {
  machine::MachineModel mach;  // 1 memory port
  ModuloReservationTable mrt(mach, 4);
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 2));
  mrt.place(Opcode::kLoad, 2);
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 2));
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 6));  // same row mod 4
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 3));
}

TEST(Mrt, TwoIaluUnits) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 3);
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_TRUE(mrt.can_place(Opcode::kIAdd, 0));
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_FALSE(mrt.can_place(Opcode::kIAdd, 0));
}

TEST(Mrt, IssueWidthEnforcedAcrossClasses) {
  machine::MachineModel mach;
  mach.set_issue_width(2);
  ModuloReservationTable mrt(mach, 4);
  mrt.place(Opcode::kIAdd, 1);
  mrt.place(Opcode::kFAdd, 1);
  // Different FU class but issue bandwidth at row 1 is exhausted.
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 1));
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 2));
}

TEST(Mrt, OccupancyWrapsAroundTable) {
  machine::MachineModel mach;
  machine::MachineModel custom;
  custom.set_timing(Opcode::kFMul, {4, 4});
  ModuloReservationTable mrt(custom, 3);
  // Occupancy 4 > II 3: cannot place at all.
  EXPECT_FALSE(mrt.can_place(Opcode::kFMul, 0));
  ModuloReservationTable mrt4(custom, 4);
  EXPECT_TRUE(mrt4.can_place(Opcode::kFMul, 1));
  mrt4.place(Opcode::kFMul, 1);
  // The single FP-mul unit is now busy on every row.
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(mrt4.can_place(Opcode::kFMul, c));
}

TEST(Mrt, RemoveRestoresCapacity) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 4);
  mrt.place(Opcode::kLoad, 1);
  EXPECT_FALSE(mrt.can_place(Opcode::kLoad, 1));
  mrt.remove(Opcode::kLoad, 1);
  EXPECT_TRUE(mrt.can_place(Opcode::kLoad, 1));
}

TEST(Mrt, ZeroResourceOpsAlwaysFit) {
  machine::MachineModel mach;
  mach.set_issue_width(1);
  ModuloReservationTable mrt(mach, 1);
  mrt.place(Opcode::kIAdd, 0);
  EXPECT_TRUE(mrt.can_place(Opcode::kNop, 0));  // FuClass::kNone
}

TEST(Mrt, UsageCountersTrack) {
  machine::MachineModel mach;
  ModuloReservationTable mrt(mach, 2);
  EXPECT_EQ(mrt.issue_used(0), 0);
  mrt.place(Opcode::kIAdd, 0);
  mrt.place(Opcode::kLoad, 0);
  EXPECT_EQ(mrt.issue_used(0), 2);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kIAlu, 0), 1);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kMem, 0), 1);
  EXPECT_EQ(mrt.fu_used(ir::FuClass::kMem, 1), 0);
}

// ---- Differential: bitmap fast path vs the scalar reference ------------
//
// The bitmap MRT must answer every probe bit-for-bit like the retained
// count-only implementation, across random machine shapes (issue width,
// FU counts, occupancies incl. non-pipelined wrap-around) and random
// interleavings of place/remove. Placements mirror between the two
// tables, so any divergence pinpoints a bitmap maintenance bug.

Opcode random_op(std::mt19937_64& rng) {
  static const Opcode kOps[] = {Opcode::kIAdd, Opcode::kISub, Opcode::kIMul, Opcode::kShift,
                                Opcode::kFAdd, Opcode::kFMul, Opcode::kLoad, Opcode::kStore,
                                Opcode::kNop};
  return kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))];
}

TEST(MrtDifferential, RandomisedAgainstScalarReference) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    machine::MachineModel mach;
    mach.set_issue_width(1 + static_cast<int>(rng() % 6));
    mach.set_fu_count(ir::FuClass::kIAlu, static_cast<int>(rng() % 4));
    mach.set_fu_count(ir::FuClass::kFpAdd, static_cast<int>(rng() % 3));
    mach.set_fu_count(ir::FuClass::kFpMul, static_cast<int>(rng() % 3));
    mach.set_fu_count(ir::FuClass::kMem, 1 + static_cast<int>(rng() % 3));
    // Non-pipelined multiplies exercise the wrap-around range scan.
    const int occ = 1 + static_cast<int>(rng() % 6);
    mach.set_timing(Opcode::kFMul, {4, occ});

    // IIs beyond 64 cross the bitmap's word boundary.
    const int ii = 1 + static_cast<int>(rng() % 90);
    ModuloReservationTable fast(mach, ii);
    ScalarReferenceMrt ref(mach, ii);

    struct Placed {
      Opcode op;
      int cycle;
    };
    std::vector<Placed> placed;
    for (int step = 0; step < 300; ++step) {
      if (!placed.empty() && rng() % 4 == 0) {
        const std::size_t i = rng() % placed.size();
        fast.remove(placed[i].op, placed[i].cycle);
        ref.remove(placed[i].op, placed[i].cycle);
        placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      const Opcode op = random_op(rng);
      const int cycle = static_cast<int>(rng() % 200) - 100;  // negative cycles too
      const bool a = fast.can_place(op, cycle);
      const bool b = ref.can_place(op, cycle);
      ASSERT_EQ(a, b) << "trial " << trial << " step " << step << " ii=" << ii
                      << " op=" << static_cast<int>(op) << " cycle=" << cycle;
      if (a) {
        fast.place(op, cycle);
        ref.place(op, cycle);
        placed.push_back({op, cycle});
      }
    }
    // Authoritative counts agree row by row at the end of the trial.
    for (int r = 0; r < ii; ++r) {
      ASSERT_EQ(fast.issue_used(r), ref.issue_used(r));
      for (int c = 0; c < ir::kNumFuClasses; ++c) {
        const auto fc = static_cast<ir::FuClass>(c);
        ASSERT_EQ(fast.fu_used(fc, r), ref.fu_used(fc, r));
      }
    }
  }
}

TEST(MrtDifferential, ResetMatchesFreshConstruction) {
  std::mt19937_64 rng(0xBEEF);
  machine::MachineModel mach;
  ModuloReservationTable reused(mach, 7);
  for (int trial = 0; trial < 50; ++trial) {
    const int ii = 1 + static_cast<int>(rng() % 80);
    reused.reset(ii);
    ModuloReservationTable fresh(mach, ii);
    ScalarReferenceMrt ref(mach, ii);
    for (int step = 0; step < 60; ++step) {
      const Opcode op = random_op(rng);
      const int cycle = static_cast<int>(rng() % 120);
      const bool want = ref.can_place(op, cycle);
      ASSERT_EQ(reused.can_place(op, cycle), want) << "reused, trial " << trial;
      ASSERT_EQ(fresh.can_place(op, cycle), want) << "fresh, trial " << trial;
      if (want) {
        reused.place(op, cycle);
        fresh.place(op, cycle);
        ref.place(op, cycle);
      }
    }
  }
}

}  // namespace
}  // namespace tms::sched
