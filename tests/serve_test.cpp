// Unit and integration tests for the compile service (src/serve): frame
// parsing (every header error, poison persistence), strict message
// round-trips, CompileService semantics (cache sharing, admission
// control, deadlines, drain), and SocketServer end-to-end behaviour over
// a real Unix-domain socket (ping, compile, malformed-frame drop,
// bad-payload tolerance, connection-limit turn-away, idle timeout,
// drain). Deterministic overload/deadline scenarios are built by parking
// the service's single worker on a promise via the pool() test hook.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "ir/textio.hpp"
#include "machine/machine.hpp"
#include "sched/tms.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/message.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace tms {
namespace {

namespace fs = std::filesystem;
using serve::Frame;
using serve::FrameError;
using serve::FrameReader;
using serve::FrameType;

/// Scratch directory in the test cwd; short enough for sun_path.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) : path_("serve_test_" + tag) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string socket_path() const { return path_ + "/s"; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------ raw sockets
//
// The Client class only speaks the protocol correctly; the server's
// hostile-input paths need a socket we can write garbage to.

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `reader` yields a complete frame. False on EOF, reader
/// error, or timeout.
bool raw_read_frame(int fd, FrameReader& reader, Frame& out, int timeout_ms = 10000) {
  while (true) {
    switch (reader.next(out)) {
      case FrameReader::Next::kFrame: return true;
      case FrameReader::Next::kError: return false;
      case FrameReader::Next::kNeedMore: break;
    }
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return false;
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return false;
    reader.feed({buf, static_cast<std::size_t>(n)});
  }
}

/// True when the peer closes the connection within the timeout.
bool raw_read_eof(int fd, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 200) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0) return false;
    // Discard any late bytes (e.g. an error response before the close).
  }
  return false;
}

serve::Request chain_request(std::uint64_t id = 1) {
  serve::Request req;
  req.id = id;
  req.scheduler = "tms";
  req.ncore = 4;
  req.loop = test::tiny_chain();
  return req;
}

/// Rebuilds and validates the schedule a response describes, exactly as
/// tmsq/tmsc --remote do.
void expect_valid_remote_schedule(const serve::Response& resp, const ir::Loop& loop,
                                  const machine::MachineModel& mach) {
  ASSERT_TRUE(resp.ok) << "[" << serve::to_string(resp.code) << "] " << resp.message;
  ASSERT_EQ(resp.slots.size(), static_cast<std::size_t>(loop.num_instrs()));
  sched::Schedule s(loop, mach, resp.ii);
  for (int v = 0; v < loop.num_instrs(); ++v) {
    s.set_slot(v, resp.slots[static_cast<std::size_t>(v)]);
  }
  EXPECT_FALSE(s.validate().has_value()) << *s.validate();
}

// ------------------------------------------------------------------ Frame

TEST(Frame, EncodeDecodeRoundTripAcrossTypesAndSizes) {
  const std::string big(100000, 'x');
  const std::vector<std::pair<FrameType, std::string>> cases = {
      {FrameType::kRequest, ""},
      {FrameType::kResponse, "payload"},
      {FrameType::kPing, ""},
      {FrameType::kPong, big},
  };
  FrameReader reader;
  std::string wire;
  for (const auto& [type, payload] : cases) wire += serve::encode_frame(type, payload);

  // Feed in uneven chunks to exercise incremental reassembly.
  for (std::size_t off = 0; off < wire.size();) {
    const std::size_t n = std::min<std::size_t>(1 + off % 4096, wire.size() - off);
    reader.feed(std::string_view(wire).substr(off, n));
    off += n;
  }
  for (const auto& [type, payload] : cases) {
    Frame f;
    ASSERT_EQ(reader.next(f), FrameReader::Next::kFrame);
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.payload, payload);
  }
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(Frame, PartialHeaderNeedsMore) {
  FrameReader reader;
  const std::string wire = serve::encode_frame(FrameType::kPing, "");
  reader.feed(std::string_view(wire).substr(0, serve::kFrameHeaderSize - 1));
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), serve::kFrameHeaderSize - 1);
  reader.feed(std::string_view(wire).substr(serve::kFrameHeaderSize - 1));
  EXPECT_EQ(reader.next(f), FrameReader::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kPing);
}

TEST(Frame, EveryHeaderFieldIsValidated) {
  struct Case {
    const char* name;
    std::size_t offset;
    char byte;
    FrameError expect;
  };
  // encode a valid frame, then corrupt exactly one header field.
  const std::vector<Case> cases = {
      {"magic", 0, 'X', FrameError::kBadMagic},
      {"version", 4, 9, FrameError::kBadVersion},
      {"type", 5, 99, FrameError::kBadType},
      {"flags", 6, 1, FrameError::kBadFlags},
  };
  for (const Case& c : cases) {
    std::string wire = serve::encode_frame(FrameType::kRequest, "hello");
    wire[c.offset] = c.byte;
    FrameReader reader;
    reader.feed(wire);
    Frame f;
    EXPECT_EQ(reader.next(f), FrameReader::Next::kError) << c.name;
    EXPECT_EQ(reader.error(), c.expect) << c.name;
  }
}

TEST(Frame, OversizePayloadIsRejectedByTheCap) {
  FrameReader reader(16);  // tiny cap
  reader.feed(serve::encode_frame(FrameType::kRequest, std::string(17, 'a')));
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), FrameError::kOversize);
  // Exactly at the cap is fine.
  FrameReader ok(16);
  ok.feed(serve::encode_frame(FrameType::kRequest, std::string(16, 'a')));
  EXPECT_EQ(ok.next(f), FrameReader::Next::kFrame);
}

TEST(Frame, ErrorPoisonsTheReaderPermanently) {
  FrameReader reader;
  std::string bad = serve::encode_frame(FrameType::kPing, "");
  bad[0] = '?';
  reader.feed(bad);
  Frame f;
  ASSERT_EQ(reader.next(f), FrameReader::Next::kError);
  // A perfectly good frame after the poison must not resurrect it.
  reader.feed(serve::encode_frame(FrameType::kPing, ""));
  EXPECT_EQ(reader.next(f), FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), FrameError::kBadMagic);
}

// ---------------------------------------------------------------- Message

TEST(Message, RequestRoundTripPreservesEveryField) {
  serve::Request req;
  req.id = 0xDEADBEEFULL;
  req.scheduler = "sms";
  req.ncore = 7;
  req.deadline_ms = 1234;
  req.loop = test::tiny_recurrence();

  const auto parsed = serve::parse_request(serve::serialise_request(req));
  const auto* out = std::get_if<serve::Request>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->id, req.id);
  EXPECT_EQ(out->scheduler, req.scheduler);
  EXPECT_EQ(out->ncore, req.ncore);
  EXPECT_EQ(out->deadline_ms, req.deadline_ms);
  EXPECT_EQ(ir::serialise_loop(out->loop), ir::serialise_loop(req.loop));
}

TEST(Message, RequestParserIsStrict) {
  const std::string good = serve::serialise_request(chain_request());
  const std::vector<std::string> bad = {
      "",                                       // empty
      "bogus v1\n",                             // wrong banner
      "tmsq-request v2\n",                      // wrong version
      "tmsq-request v1\nwibble 3\n",            // unknown key
      "tmsq-request v1\nid 1\n",                // missing loop
      "tmsq-request v1\nid notanumber\nloop\nloop l\ninstr a iadd\n",
      good + "trailing garbage\n",              // bytes after the loop text
  };
  for (const std::string& payload : bad) {
    const auto parsed = serve::parse_request(payload);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr)
        << "must reject: " << payload.substr(0, 40);
  }
  const auto ok = serve::parse_request(good);
  EXPECT_NE(std::get_if<serve::Request>(&ok), nullptr);
}

TEST(Message, ResponseOkRoundTrip) {
  serve::Response resp;
  resp.id = 42;
  resp.ok = true;
  resp.scheduler = "tms";
  resp.cache_hit = true;
  resp.ii = 6;
  resp.mii = 5;
  resp.c_delay_threshold = 3;
  resp.p_max = 0.125;
  resp.slots = {0, 2, 5, 7};
  resp.server_ms = 1.5;

  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->id, 42u);
  EXPECT_TRUE(out->ok);
  EXPECT_EQ(out->scheduler, "tms");
  EXPECT_TRUE(out->cache_hit);
  EXPECT_EQ(out->ii, 6);
  EXPECT_EQ(out->mii, 5);
  EXPECT_EQ(out->c_delay_threshold, 3);
  EXPECT_DOUBLE_EQ(out->p_max, 0.125);
  EXPECT_EQ(out->slots, (std::vector<int>{0, 2, 5, 7}));
  EXPECT_DOUBLE_EQ(out->server_ms, 1.5);
}

TEST(Message, ResponseErrorRoundTripFoldsNewlines) {
  serve::Response resp =
      serve::make_error(7, serve::ErrorCode::kOverload, "queue full\nsecond line", 250);
  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->id, 7u);
  EXPECT_EQ(out->code, serve::ErrorCode::kOverload);
  EXPECT_EQ(out->retry_after_ms, 250);
  EXPECT_EQ(out->message.find('\n'), std::string::npos)
      << "multi-line messages must fold to one line";
  EXPECT_NE(out->message.find("queue full"), std::string::npos);
}

TEST(Message, ResponseParserIsStrict) {
  const std::vector<std::string> bad = {
      "",
      "tmsq-response v1\n",                            // no status
      "tmsq-response v1\nstatus maybe\n",              // unknown status
      "tmsq-response v1\nstatus error\ncode wat\nmessage x\n",  // unknown code
      "tmsq-response v1\nstatus ok\nii 0\nmii 1\nslots 0\n",    // nonpositive ii
  };
  for (const std::string& payload : bad) {
    const auto parsed = serve::parse_response(payload);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr)
        << "must reject: " << payload.substr(0, 50);
  }
}

TEST(Message, ErrorCodeStringsRoundTrip) {
  using serve::ErrorCode;
  for (const ErrorCode c :
       {ErrorCode::kParse, ErrorCode::kBadRequest, ErrorCode::kScheduleFail,
        ErrorCode::kValidateFail, ErrorCode::kDeadline, ErrorCode::kOverload,
        ErrorCode::kShutdown, ErrorCode::kInternal}) {
    ErrorCode back = ErrorCode::kParse;
    ASSERT_TRUE(serve::error_code_from_string(serve::to_string(c), back));
    EXPECT_EQ(back, c);
  }
  ErrorCode out;
  EXPECT_FALSE(serve::error_code_from_string("nonsense", out));
}

// ---------------------------------------------------------------- Service

TEST(Service, CompileMatchesTheLocalScheduler) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 2;
  serve::CompileService svc(mach, nullptr, opts);

  const serve::Request req = chain_request();
  const serve::Response resp = svc.handle(req);
  expect_valid_remote_schedule(resp, req.loop, mach);
  EXPECT_EQ(resp.id, req.id);
  EXPECT_EQ(resp.scheduler, "tms");
  EXPECT_FALSE(resp.cache_hit) << "no cache attached";

  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;
  const auto local = sched::tms_schedule(req.loop, mach, cfg);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(resp.ii, local->schedule.ii()) << "remote and local must agree";
  EXPECT_EQ(resp.mii, local->mii);
  svc.shutdown();
}

TEST(Service, SharedCacheTurnsTheSecondRequestIntoAHit) {
  machine::MachineModel mach;
  driver::ScheduleCache cache(64);
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, &cache, opts);

  const serve::Request req = chain_request();
  const serve::Response first = svc.handle(req);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cache_hit);

  const serve::Response second = svc.handle(req);
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.ii, first.ii);
  EXPECT_EQ(second.slots, first.slots);
  EXPECT_GE(cache.stats().hits(), 1u);
  svc.shutdown();
}

TEST(Service, RejectsBadSchedulerAndBadNcore) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);

  serve::Request req = chain_request();
  req.scheduler = "bogus";
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);

  req = chain_request();
  req.ncore = 0;
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);

  req = chain_request();
  req.ncore = 100000;
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);
  svc.shutdown();
}

TEST(Service, FullQueueAnswersOverloadWithRetryHint) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 1;
  opts.retry_after_ms = 77;
  serve::CompileService svc(mach, nullptr, opts);

  // Park the single worker so admissions pile into the queue.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = svc.pool().try_submit([&] {
    started.set_value();
    gate.wait();
  });
  ASSERT_NE(blocker, nullptr);
  started.get_future().wait();

  // This request takes the only queue slot and waits.
  serve::Response queued_resp;
  std::thread waiter([&] { queued_resp = svc.handle(chain_request(10)); });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.queue_depth() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(svc.queue_depth(), 1u) << "queued request never reached the pool";

  // Queue is at capacity: the next admission is refused immediately.
  const serve::Response refused = svc.handle(chain_request(11));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, serve::ErrorCode::kOverload);
  EXPECT_EQ(refused.retry_after_ms, 77);

  release.set_value();
  waiter.join();
  EXPECT_TRUE(queued_resp.ok) << "the admitted request must still complete: "
                              << queued_resp.message;
  svc.shutdown();
}

TEST(Service, DeadlineExpiresWhileQueued) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 4;
  serve::CompileService svc(mach, nullptr, opts);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = svc.pool().try_submit([&] {
    started.set_value();
    gate.wait();
  });
  ASSERT_NE(blocker, nullptr);
  started.get_future().wait();

  serve::Request req = chain_request(20);
  req.deadline_ms = 50;  // expires while the blocker holds the worker
  const serve::Response resp = svc.handle(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, serve::ErrorCode::kDeadline);

  release.set_value();
  svc.shutdown();
}

TEST(Service, DrainRefusesNewRequests) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);
  svc.begin_drain();
  EXPECT_TRUE(svc.draining());
  const serve::Response resp = svc.handle(chain_request());
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, serve::ErrorCode::kShutdown);
  svc.shutdown();
}

// ----------------------------------------------------------- SocketServer

struct ServerFixture {
  ScratchDir dir;
  machine::MachineModel mach;
  serve::CompileService service;
  serve::SocketServer server;

  explicit ServerFixture(serve::ServiceOptions sopts = {}, serve::ServerOptions xopts = {})
      : dir("server"),
        service(mach, nullptr, fix_threads(sopts)),
        server(service, fix_path(xopts, dir.socket_path())) {}

  ~ServerFixture() {
    server.drain();
    service.shutdown();
  }

  static serve::ServiceOptions fix_threads(serve::ServiceOptions o) {
    if (o.threads == 0) o.threads = 2;
    return o;
  }
  static serve::ServerOptions fix_path(serve::ServerOptions o, std::string path) {
    o.unix_path = std::move(path);
    return o;
  }
};

TEST(Server, PingAndCompileOverAUnixSocket) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());
  EXPECT_FALSE(client.ping().has_value());

  const serve::Request req = chain_request();
  const auto result = client.compile(req);
  const auto* resp = std::get_if<serve::Response>(&result);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(result);
  expect_valid_remote_schedule(*resp, req.loop, fx.mach);

  // Same connection serves many requests.
  const auto again = client.compile(req);
  ASSERT_NE(std::get_if<serve::Response>(&again), nullptr);
}

TEST(Server, ConnectToMissingSocketFails) {
  serve::Client client;
  EXPECT_TRUE(client.connect_unix("serve_test_nonexistent/s").has_value());
}

TEST(Server, MalformedFrameGetsParseErrorThenDrop) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "this is not a frame header, not even close"));

  FrameReader reader;
  Frame f;
  ASSERT_TRUE(raw_read_frame(fd, reader, f)) << "expected a best-effort error response";
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* resp = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(parsed);
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, serve::ErrorCode::kParse);

  EXPECT_TRUE(raw_read_eof(fd, 10000)) << "broken framing must drop the connection";
  ::close(fd);
}

TEST(Server, WellFramedGarbagePayloadKeepsTheConnection) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  FrameReader reader;
  Frame f;

  ASSERT_TRUE(raw_send(fd, serve::encode_frame(FrameType::kRequest, "not a request")));
  ASSERT_TRUE(raw_read_frame(fd, reader, f));
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* err = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, serve::ErrorCode::kParse);

  // The framing is intact, so the connection survives and serves a
  // proper request afterwards.
  const serve::Request req = chain_request(5);
  ASSERT_TRUE(raw_send(fd, serve::encode_frame(FrameType::kRequest,
                                               serve::serialise_request(req))));
  ASSERT_TRUE(raw_read_frame(fd, reader, f));
  const auto parsed2 = serve::parse_response(f.payload);
  const auto* ok = std::get_if<serve::Response>(&parsed2);
  ASSERT_NE(ok, nullptr) << std::get<std::string>(parsed2);
  EXPECT_TRUE(ok->ok) << ok->message;
  EXPECT_EQ(ok->id, 5u);
  ::close(fd);
}

TEST(Server, OverConnectionLimitIsTurnedAwayWithOverload) {
  serve::ServerOptions sopts;
  sopts.max_connections = 1;
  ServerFixture fx({}, sopts);
  ASSERT_FALSE(fx.server.start().has_value());

  serve::Client first;
  ASSERT_FALSE(first.connect_unix(fx.dir.socket_path()).has_value());
  ASSERT_FALSE(first.ping().has_value()) << "first connection must be live";

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  FrameReader reader;
  Frame f;
  ASSERT_TRUE(raw_read_frame(fd, reader, f)) << "turn-away must be structured, not silent";
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* resp = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(resp->code, serve::ErrorCode::kOverload);
  EXPECT_GT(resp->retry_after_ms, 0);
  EXPECT_TRUE(raw_read_eof(fd, 10000));
  ::close(fd);

  // The established connection is unaffected.
  EXPECT_FALSE(first.ping().has_value());
}

TEST(Server, IdleConnectionIsClosed) {
  serve::ServerOptions sopts;
  sopts.idle_timeout_ms = 250;
  ServerFixture fx({}, sopts);
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(raw_read_eof(fd, 10000)) << "idle connection must be reaped";
  ::close(fd);
}

TEST(Server, DrainStopsAcceptingAndUnbindsTheSocket) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());
  EXPECT_TRUE(fx.server.running());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());

  fx.server.drain();
  EXPECT_FALSE(fx.server.running());
  EXPECT_EQ(fx.server.connection_count(), 0);
  EXPECT_FALSE(fs::exists(fx.dir.socket_path())) << "socket file must be unlinked";

  serve::Client late;
  EXPECT_TRUE(late.connect_unix(fx.dir.socket_path()).has_value());
  fx.server.drain();  // idempotent
}

TEST(Server, StartFailsOnAnOverlongSocketPath) {
  machine::MachineModel mach;
  serve::ServiceOptions sopts;
  sopts.threads = 1;
  serve::CompileService service(mach, nullptr, sopts);
  serve::ServerOptions opts;
  opts.unix_path = std::string(200, 'a') + "/s";  // beyond sun_path
  serve::SocketServer server(service, opts);
  EXPECT_TRUE(server.start().has_value());
  service.shutdown();
}

}  // namespace
}  // namespace tms
