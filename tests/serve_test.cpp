// Unit and integration tests for the compile service (src/serve): frame
// parsing (every header error, poison persistence), strict message
// round-trips, CompileService semantics (cache sharing, admission
// control, deadlines, drain), and SocketServer end-to-end behaviour over
// a real Unix-domain socket (ping, compile, malformed-frame drop,
// bad-payload tolerance, connection-limit turn-away, idle timeout,
// drain). Deterministic overload/deadline scenarios are built by parking
// the service's single worker on a promise via the pool() test hook.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "ir/textio.hpp"
#include "machine/machine.hpp"
#include "obs/counters.hpp"
#include "sched/tms.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/message.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/json_parse.hpp"
#include "test_util.hpp"

namespace tms {
namespace {

namespace fs = std::filesystem;
using serve::Frame;
using serve::FrameError;
using serve::FrameReader;
using serve::FrameType;

/// Scratch directory in the test cwd; short enough for sun_path.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) : path_("serve_test_" + tag) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string socket_path() const { return path_ + "/s"; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------ raw sockets
//
// The Client class only speaks the protocol correctly; the server's
// hostile-input paths need a socket we can write garbage to.

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `reader` yields a complete frame. False on EOF, reader
/// error, or timeout.
bool raw_read_frame(int fd, FrameReader& reader, Frame& out, int timeout_ms = 10000) {
  while (true) {
    switch (reader.next(out)) {
      case FrameReader::Next::kFrame: return true;
      case FrameReader::Next::kError: return false;
      case FrameReader::Next::kNeedMore: break;
    }
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return false;
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return false;
    reader.feed({buf, static_cast<std::size_t>(n)});
  }
}

/// True when the peer closes the connection within the timeout.
bool raw_read_eof(int fd, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 200) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0) return false;
    // Discard any late bytes (e.g. an error response before the close).
  }
  return false;
}

serve::Request chain_request(std::uint64_t id = 1) {
  serve::Request req;
  req.id = id;
  req.scheduler = "tms";
  req.ncore = 4;
  req.loop = test::tiny_chain();
  return req;
}

/// Rebuilds and validates the schedule a response describes, exactly as
/// tmsq/tmsc --remote do.
void expect_valid_remote_schedule(const serve::Response& resp, const ir::Loop& loop,
                                  const machine::MachineModel& mach) {
  ASSERT_TRUE(resp.ok) << "[" << serve::to_string(resp.code) << "] " << resp.message;
  ASSERT_EQ(resp.slots.size(), static_cast<std::size_t>(loop.num_instrs()));
  sched::Schedule s(loop, mach, resp.ii);
  for (int v = 0; v < loop.num_instrs(); ++v) {
    s.set_slot(v, resp.slots[static_cast<std::size_t>(v)]);
  }
  EXPECT_FALSE(s.validate().has_value()) << *s.validate();
}

// ------------------------------------------------------------------ Frame

TEST(Frame, EncodeDecodeRoundTripAcrossTypesAndSizes) {
  const std::string big(100000, 'x');
  const std::vector<std::pair<FrameType, std::string>> cases = {
      {FrameType::kRequest, ""},
      {FrameType::kResponse, "payload"},
      {FrameType::kPing, ""},
      {FrameType::kPong, big},
  };
  FrameReader reader;
  std::string wire;
  for (const auto& [type, payload] : cases) wire += serve::encode_frame(type, payload);

  // Feed in uneven chunks to exercise incremental reassembly.
  for (std::size_t off = 0; off < wire.size();) {
    const std::size_t n = std::min<std::size_t>(1 + off % 4096, wire.size() - off);
    reader.feed(std::string_view(wire).substr(off, n));
    off += n;
  }
  for (const auto& [type, payload] : cases) {
    Frame f;
    ASSERT_EQ(reader.next(f), FrameReader::Next::kFrame);
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.payload, payload);
  }
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(Frame, PartialHeaderNeedsMore) {
  FrameReader reader;
  const std::string wire = serve::encode_frame(FrameType::kPing, "");
  reader.feed(std::string_view(wire).substr(0, serve::kFrameHeaderSize - 1));
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), serve::kFrameHeaderSize - 1);
  reader.feed(std::string_view(wire).substr(serve::kFrameHeaderSize - 1));
  EXPECT_EQ(reader.next(f), FrameReader::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kPing);
}

TEST(Frame, EveryHeaderFieldIsValidated) {
  struct Case {
    const char* name;
    std::size_t offset;
    char byte;
    FrameError expect;
  };
  // encode a valid frame, then corrupt exactly one header field.
  const std::vector<Case> cases = {
      {"magic", 0, 'X', FrameError::kBadMagic},
      {"version", 4, 9, FrameError::kBadVersion},
      {"type", 5, 99, FrameError::kBadType},
      {"flags", 6, 1, FrameError::kBadFlags},
  };
  for (const Case& c : cases) {
    std::string wire = serve::encode_frame(FrameType::kRequest, "hello");
    wire[c.offset] = c.byte;
    FrameReader reader;
    reader.feed(wire);
    Frame f;
    EXPECT_EQ(reader.next(f), FrameReader::Next::kError) << c.name;
    EXPECT_EQ(reader.error(), c.expect) << c.name;
  }
}

TEST(Frame, OversizePayloadIsRejectedByTheCap) {
  FrameReader reader(16);  // tiny cap
  reader.feed(serve::encode_frame(FrameType::kRequest, std::string(17, 'a')));
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), FrameError::kOversize);
  // Exactly at the cap is fine.
  FrameReader ok(16);
  ok.feed(serve::encode_frame(FrameType::kRequest, std::string(16, 'a')));
  EXPECT_EQ(ok.next(f), FrameReader::Next::kFrame);
}

TEST(Frame, ErrorPoisonsTheReaderPermanently) {
  FrameReader reader;
  std::string bad = serve::encode_frame(FrameType::kPing, "");
  bad[0] = '?';
  reader.feed(bad);
  Frame f;
  ASSERT_EQ(reader.next(f), FrameReader::Next::kError);
  // A perfectly good frame after the poison must not resurrect it.
  reader.feed(serve::encode_frame(FrameType::kPing, ""));
  EXPECT_EQ(reader.next(f), FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), FrameError::kBadMagic);
}

// ---------------------------------------------------------------- Message

TEST(Message, RequestRoundTripPreservesEveryField) {
  serve::Request req;
  req.id = 0xDEADBEEFULL;
  req.scheduler = "sms";
  req.ncore = 7;
  req.deadline_ms = 1234;
  req.loop = test::tiny_recurrence();

  const auto parsed = serve::parse_request(serve::serialise_request(req));
  const auto* out = std::get_if<serve::Request>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->id, req.id);
  EXPECT_EQ(out->scheduler, req.scheduler);
  EXPECT_EQ(out->ncore, req.ncore);
  EXPECT_EQ(out->deadline_ms, req.deadline_ms);
  EXPECT_EQ(ir::serialise_loop(out->loop), ir::serialise_loop(req.loop));
}

TEST(Message, RequestParserIsStrict) {
  const std::string good = serve::serialise_request(chain_request());
  const std::vector<std::string> bad = {
      "",                                       // empty
      "bogus v1\n",                             // wrong banner
      "tmsq-request v2\n",                      // wrong version
      "tmsq-request v1\nwibble 3\n",            // unknown key
      "tmsq-request v1\nid 1\n",                // missing loop
      "tmsq-request v1\nid notanumber\nloop\nloop l\ninstr a iadd\n",
      good + "trailing garbage\n",              // bytes after the loop text
  };
  for (const std::string& payload : bad) {
    const auto parsed = serve::parse_request(payload);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr)
        << "must reject: " << payload.substr(0, 40);
  }
  const auto ok = serve::parse_request(good);
  EXPECT_NE(std::get_if<serve::Request>(&ok), nullptr);
}

TEST(Message, ResponseOkRoundTrip) {
  serve::Response resp;
  resp.id = 42;
  resp.ok = true;
  resp.scheduler = "tms";
  resp.cache_hit = true;
  resp.ii = 6;
  resp.mii = 5;
  resp.c_delay_threshold = 3;
  resp.p_max = 0.125;
  resp.slots = {0, 2, 5, 7};
  resp.server_ms = 1.5;

  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->id, 42u);
  EXPECT_TRUE(out->ok);
  EXPECT_EQ(out->scheduler, "tms");
  EXPECT_TRUE(out->cache_hit);
  EXPECT_EQ(out->ii, 6);
  EXPECT_EQ(out->mii, 5);
  EXPECT_EQ(out->c_delay_threshold, 3);
  EXPECT_DOUBLE_EQ(out->p_max, 0.125);
  EXPECT_EQ(out->slots, (std::vector<int>{0, 2, 5, 7}));
  EXPECT_DOUBLE_EQ(out->server_ms, 1.5);
}

TEST(Message, ResponseErrorRoundTripFoldsNewlines) {
  serve::Response resp =
      serve::make_error(7, serve::ErrorCode::kOverload, "queue full\nsecond line", 250);
  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->id, 7u);
  EXPECT_EQ(out->code, serve::ErrorCode::kOverload);
  EXPECT_EQ(out->retry_after_ms, 250);
  EXPECT_EQ(out->message.find('\n'), std::string::npos)
      << "multi-line messages must fold to one line";
  EXPECT_NE(out->message.find("queue full"), std::string::npos);
}

TEST(Message, ResponseParserIsStrict) {
  const std::vector<std::string> bad = {
      "",
      "tmsq-response v1\n",                            // no status
      "tmsq-response v1\nstatus maybe\n",              // unknown status
      "tmsq-response v1\nstatus error\ncode wat\nmessage x\n",  // unknown code
      "tmsq-response v1\nstatus ok\nii 0\nmii 1\nslots 0\n",    // nonpositive ii
  };
  for (const std::string& payload : bad) {
    const auto parsed = serve::parse_response(payload);
    EXPECT_NE(std::get_if<std::string>(&parsed), nullptr)
        << "must reject: " << payload.substr(0, 50);
  }
}

TEST(Message, ErrorCodeStringsRoundTrip) {
  using serve::ErrorCode;
  for (const ErrorCode c :
       {ErrorCode::kParse, ErrorCode::kBadRequest, ErrorCode::kScheduleFail,
        ErrorCode::kValidateFail, ErrorCode::kDeadline, ErrorCode::kOverload,
        ErrorCode::kShutdown, ErrorCode::kInternal}) {
    ErrorCode back = ErrorCode::kParse;
    ASSERT_TRUE(serve::error_code_from_string(serve::to_string(c), back));
    EXPECT_EQ(back, c);
  }
  ErrorCode out;
  EXPECT_FALSE(serve::error_code_from_string("nonsense", out));
}

// ---------------------------------------------------------------- Service

TEST(Service, CompileMatchesTheLocalScheduler) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 2;
  serve::CompileService svc(mach, nullptr, opts);

  const serve::Request req = chain_request();
  const serve::Response resp = svc.handle(req);
  expect_valid_remote_schedule(resp, req.loop, mach);
  EXPECT_EQ(resp.id, req.id);
  EXPECT_EQ(resp.scheduler, "tms");
  EXPECT_FALSE(resp.cache_hit) << "no cache attached";

  machine::SpmtConfig cfg;
  cfg.ncore = req.ncore;
  const auto local = sched::tms_schedule(req.loop, mach, cfg);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(resp.ii, local->schedule.ii()) << "remote and local must agree";
  EXPECT_EQ(resp.mii, local->mii);
  svc.shutdown();
}

TEST(Service, SharedCacheTurnsTheSecondRequestIntoAHit) {
  machine::MachineModel mach;
  driver::ScheduleCache cache(64);
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, &cache, opts);

  const serve::Request req = chain_request();
  const serve::Response first = svc.handle(req);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cache_hit);

  const serve::Response second = svc.handle(req);
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.ii, first.ii);
  EXPECT_EQ(second.slots, first.slots);
  EXPECT_GE(cache.stats().hits(), 1u);
  svc.shutdown();
}

TEST(Service, SimVerifyAcceptsCorrectSchedulesAndRecordsLatency) {
  // --sim-verify: the response only ships after a bounded event-driven
  // simulation of the lowered kernel reproduced the sequential
  // reference. A correct schedule must pass, pay exactly one
  // quick_estimate, and land one serve.latency.sim_verify sample.
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.sim_verify = true;
  opts.sim_verify_iterations = 40;
  serve::CompileService svc(mach, nullptr, opts);

  const obs::CountersSnapshot before = obs::counters_snapshot();
  const serve::Request req = chain_request();
  const serve::Response resp = svc.handle(req);
  expect_valid_remote_schedule(resp, req.loop, mach);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.value("sim.quick_estimates"), 1u);
  EXPECT_EQ(d.value("serve.sim_verify_failures"), 0u);
  EXPECT_EQ(d.time_histogram_count("serve.latency.sim_verify"), 1u);
  svc.shutdown();
}

TEST(Service, RejectsBadSchedulerAndBadNcore) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);

  serve::Request req = chain_request();
  req.scheduler = "bogus";
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);

  req = chain_request();
  req.ncore = 0;
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);

  req = chain_request();
  req.ncore = 100000;
  EXPECT_EQ(svc.handle(req).code, serve::ErrorCode::kBadRequest);
  svc.shutdown();
}

TEST(Service, FullQueueAnswersOverloadWithRetryHint) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 1;
  opts.retry_after_ms = 77;
  serve::CompileService svc(mach, nullptr, opts);

  // Park the single worker so admissions pile into the queue.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = svc.pool().try_submit([&] {
    started.set_value();
    gate.wait();
  });
  ASSERT_NE(blocker, nullptr);
  started.get_future().wait();

  // This request takes the only queue slot and waits.
  serve::Response queued_resp;
  std::thread waiter([&] { queued_resp = svc.handle(chain_request(10)); });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.queue_depth() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(svc.queue_depth(), 1u) << "queued request never reached the pool";

  // Queue is at capacity: the next admission is refused immediately.
  const serve::Response refused = svc.handle(chain_request(11));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, serve::ErrorCode::kOverload);
  EXPECT_EQ(refused.retry_after_ms, 77);

  release.set_value();
  waiter.join();
  EXPECT_TRUE(queued_resp.ok) << "the admitted request must still complete: "
                              << queued_resp.message;
  svc.shutdown();
}

TEST(Service, DeadlineExpiresWhileQueued) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 4;
  serve::CompileService svc(mach, nullptr, opts);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = svc.pool().try_submit([&] {
    started.set_value();
    gate.wait();
  });
  ASSERT_NE(blocker, nullptr);
  started.get_future().wait();

  serve::Request req = chain_request(20);
  req.deadline_ms = 50;  // expires while the blocker holds the worker
  const serve::Response resp = svc.handle(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, serve::ErrorCode::kDeadline);

  release.set_value();
  svc.shutdown();
}

TEST(Service, DrainRefusesNewRequests) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);
  svc.begin_drain();
  EXPECT_TRUE(svc.draining());
  const serve::Response resp = svc.handle(chain_request());
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, serve::ErrorCode::kShutdown);
  svc.shutdown();
}

// ----------------------------------------------------------- SocketServer

struct ServerFixture {
  ScratchDir dir;
  machine::MachineModel mach;
  serve::CompileService service;
  serve::SocketServer server;

  explicit ServerFixture(serve::ServiceOptions sopts = {}, serve::ServerOptions xopts = {})
      : dir("server"),
        service(mach, nullptr, fix_threads(sopts)),
        server(service, fix_path(xopts, dir.socket_path())) {}

  ~ServerFixture() {
    server.drain();
    service.shutdown();
  }

  static serve::ServiceOptions fix_threads(serve::ServiceOptions o) {
    if (o.threads == 0) o.threads = 2;
    return o;
  }
  static serve::ServerOptions fix_path(serve::ServerOptions o, std::string path) {
    o.unix_path = std::move(path);
    return o;
  }
};

TEST(Server, PingAndCompileOverAUnixSocket) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());
  EXPECT_FALSE(client.ping().has_value());

  const serve::Request req = chain_request();
  const auto result = client.compile(req);
  const auto* resp = std::get_if<serve::Response>(&result);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(result);
  expect_valid_remote_schedule(*resp, req.loop, fx.mach);

  // Same connection serves many requests.
  const auto again = client.compile(req);
  ASSERT_NE(std::get_if<serve::Response>(&again), nullptr);
}

TEST(Server, ConnectToMissingSocketFails) {
  serve::Client client;
  EXPECT_TRUE(client.connect_unix("serve_test_nonexistent/s").has_value());
}

TEST(Server, MalformedFrameGetsParseErrorThenDrop) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "this is not a frame header, not even close"));

  FrameReader reader;
  Frame f;
  ASSERT_TRUE(raw_read_frame(fd, reader, f)) << "expected a best-effort error response";
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* resp = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(parsed);
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, serve::ErrorCode::kParse);

  EXPECT_TRUE(raw_read_eof(fd, 10000)) << "broken framing must drop the connection";
  ::close(fd);
}

TEST(Server, WellFramedGarbagePayloadKeepsTheConnection) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  FrameReader reader;
  Frame f;

  ASSERT_TRUE(raw_send(fd, serve::encode_frame(FrameType::kRequest, "not a request")));
  ASSERT_TRUE(raw_read_frame(fd, reader, f));
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* err = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, serve::ErrorCode::kParse);

  // The framing is intact, so the connection survives and serves a
  // proper request afterwards.
  const serve::Request req = chain_request(5);
  ASSERT_TRUE(raw_send(fd, serve::encode_frame(FrameType::kRequest,
                                               serve::serialise_request(req))));
  ASSERT_TRUE(raw_read_frame(fd, reader, f));
  const auto parsed2 = serve::parse_response(f.payload);
  const auto* ok = std::get_if<serve::Response>(&parsed2);
  ASSERT_NE(ok, nullptr) << std::get<std::string>(parsed2);
  EXPECT_TRUE(ok->ok) << ok->message;
  EXPECT_EQ(ok->id, 5u);
  ::close(fd);
}

TEST(Server, OverConnectionLimitIsTurnedAwayWithOverload) {
  serve::ServerOptions sopts;
  sopts.max_connections = 1;
  ServerFixture fx({}, sopts);
  ASSERT_FALSE(fx.server.start().has_value());

  serve::Client first;
  ASSERT_FALSE(first.connect_unix(fx.dir.socket_path()).has_value());
  ASSERT_FALSE(first.ping().has_value()) << "first connection must be live";

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  FrameReader reader;
  Frame f;
  ASSERT_TRUE(raw_read_frame(fd, reader, f)) << "turn-away must be structured, not silent";
  ASSERT_EQ(f.type, FrameType::kResponse);
  const auto parsed = serve::parse_response(f.payload);
  const auto* resp = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(resp, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(resp->code, serve::ErrorCode::kOverload);
  EXPECT_GT(resp->retry_after_ms, 0);
  EXPECT_TRUE(raw_read_eof(fd, 10000));
  ::close(fd);

  // The established connection is unaffected.
  EXPECT_FALSE(first.ping().has_value());
}

TEST(Server, IdleConnectionIsClosed) {
  serve::ServerOptions sopts;
  sopts.idle_timeout_ms = 250;
  ServerFixture fx({}, sopts);
  ASSERT_FALSE(fx.server.start().has_value());

  const int fd = raw_connect(fx.dir.socket_path());
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(raw_read_eof(fd, 10000)) << "idle connection must be reaped";
  ::close(fd);
}

TEST(Server, DrainStopsAcceptingAndUnbindsTheSocket) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());
  EXPECT_TRUE(fx.server.running());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());

  fx.server.drain();
  EXPECT_FALSE(fx.server.running());
  EXPECT_EQ(fx.server.connection_count(), 0);
  EXPECT_FALSE(fs::exists(fx.dir.socket_path())) << "socket file must be unlinked";

  serve::Client late;
  EXPECT_TRUE(late.connect_unix(fx.dir.socket_path()).has_value());
  fx.server.drain();  // idempotent
}

// -------------------------------------------------------- Request identity

TEST(Message, RequestIdRoundTripsAndEmptyIdIsOmittedFromTheWire) {
  serve::Request req = chain_request();
  req.request_id = "client-7.a:b_c-d";
  const auto parsed = serve::parse_request(serve::serialise_request(req));
  const auto* out = std::get_if<serve::Request>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->request_id, req.request_id);

  // An empty id serialises to no request_id line at all, which is what
  // keeps the serialise->parse->serialise fixpoint (tmsfuzz property 2).
  req.request_id.clear();
  const std::string wire = serve::serialise_request(req);
  EXPECT_EQ(wire.find("request_id"), std::string::npos);
  const auto reparsed = serve::parse_request(wire);
  const auto* out2 = std::get_if<serve::Request>(&reparsed);
  ASSERT_NE(out2, nullptr);
  EXPECT_TRUE(out2->request_id.empty());
}

TEST(Message, RequestIdCharsetAndLengthAreEnforced) {
  EXPECT_TRUE(serve::valid_request_id("a"));
  EXPECT_TRUE(serve::valid_request_id("lg-17"));
  EXPECT_TRUE(serve::valid_request_id("A.b:C_d-9"));
  EXPECT_TRUE(serve::valid_request_id(std::string(64, 'x')));
  EXPECT_FALSE(serve::valid_request_id(""));
  EXPECT_FALSE(serve::valid_request_id(std::string(65, 'x')));
  EXPECT_FALSE(serve::valid_request_id("has space"));
  EXPECT_FALSE(serve::valid_request_id("newline\n"));
  EXPECT_FALSE(serve::valid_request_id("uni\xc3\xa9"));

  const auto parsed = serve::parse_request("tmsq-request v1\nid 1\nrequest_id bad id\n");
  EXPECT_NE(std::get_if<std::string>(&parsed), nullptr)
      << "a request_id with a space must be rejected";
}

TEST(Message, ResponseCarriesRequestIdAndStageTimings) {
  serve::Response resp;
  resp.id = 9;
  resp.request_id = "rq-9";
  resp.ok = true;
  resp.scheduler = "tms";
  resp.ii = 4;
  resp.mii = 4;
  resp.slots = {0, 1};
  resp.t_queue_us = 11;
  resp.t_schedule_us = 22;
  resp.t_validate_us = 3;
  resp.t_total_us = 40;

  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->request_id, "rq-9");
  EXPECT_EQ(out->t_queue_us, 11);
  EXPECT_EQ(out->t_schedule_us, 22);
  EXPECT_EQ(out->t_validate_us, 3);
  EXPECT_EQ(out->t_total_us, 40);

  // Error responses carry the id too.
  serve::Response err = serve::make_error(3, serve::ErrorCode::kOverload, "full", 50);
  err.request_id = "rq-3";
  const auto eparsed = serve::parse_response(serve::serialise_response(err));
  const auto* eout = std::get_if<serve::Response>(&eparsed);
  ASSERT_NE(eout, nullptr) << std::get<std::string>(eparsed);
  EXPECT_EQ(eout->request_id, "rq-3");
}

TEST(Service, EchoesClientRequestIdOnOkAndErrorResponses) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);

  serve::Request req = chain_request();
  req.request_id = "mine-1";
  EXPECT_EQ(svc.handle(req).request_id, "mine-1");

  req.scheduler = "bogus";  // error path must echo the same id
  const serve::Response err = svc.handle(req);
  EXPECT_EQ(err.code, serve::ErrorCode::kBadRequest);
  EXPECT_EQ(err.request_id, "mine-1");
  svc.shutdown();
}

TEST(Service, MintsAServerRequestIdWhenTheClientSendsNone) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);

  const serve::Response a = svc.handle(chain_request(1));
  const serve::Response b = svc.handle(chain_request(2));
  EXPECT_EQ(a.request_id.rfind("srv-", 0), 0u) << a.request_id;
  EXPECT_EQ(b.request_id.rfind("srv-", 0), 0u) << b.request_id;
  EXPECT_NE(a.request_id, b.request_id) << "minted ids must be distinct";
  EXPECT_TRUE(serve::valid_request_id(a.request_id));
  svc.shutdown();
}

// ----------------------------------------------------- Per-stage latency

TEST(Service, StageTimingsAreConsistentPerResponseAndInTheHistograms) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);

  const obs::CountersSnapshot before = obs::counters_snapshot();
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    const serve::Response resp = svc.handle(chain_request(static_cast<std::uint64_t>(i + 1)));
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_GE(resp.t_queue_us, 0);
    EXPECT_GE(resp.t_schedule_us, 0);
    EXPECT_GE(resp.t_validate_us, 0);
    EXPECT_LE(resp.t_queue_us + resp.t_schedule_us + resp.t_validate_us, resp.t_total_us);
  }
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());

  // All four stage histograms are recorded together, exactly once per
  // request whose pipeline task ran — equal counts, and the stage sums
  // never exceed the total.
  const std::uint64_t total_n = d.time_histogram_count("serve.latency.total");
  EXPECT_EQ(total_n, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(d.time_histogram_count("serve.latency.queue_wait"), total_n);
  EXPECT_EQ(d.time_histogram_count("serve.latency.schedule"), total_n);
  EXPECT_EQ(d.time_histogram_count("serve.latency.validate"), total_n);
  EXPECT_LE(d.time_histogram_sum_us("serve.latency.queue_wait") +
                d.time_histogram_sum_us("serve.latency.schedule") +
                d.time_histogram_sum_us("serve.latency.validate"),
            d.time_histogram_sum_us("serve.latency.total"));
  svc.shutdown();
}

TEST(Service, RefusedRequestsRecordNoStageTimings) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);
  svc.begin_drain();

  const obs::CountersSnapshot before = obs::counters_snapshot();
  const serve::Response resp = svc.handle(chain_request());
  EXPECT_EQ(resp.code, serve::ErrorCode::kShutdown);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.time_histogram_count("serve.latency.total"), 0u)
      << "a drain-refused request never reached the pipeline";
  svc.shutdown();
}

// ------------------------------------------------------------- Slow log

TEST(Service, SlowLogWritesOneCanonicalJsonLinePerSlowRequest) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.slow_ms = 0;  // everything is "slow"
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  opts.slow_log = sink;
  serve::CompileService svc(mach, nullptr, opts);

  const obs::CountersSnapshot before = obs::counters_snapshot();
  serve::Request req = chain_request();
  req.request_id = "slow-1";
  ASSERT_TRUE(svc.handle(req, "test-peer").ok);
  serve::Request bad = chain_request(2);
  bad.request_id = "slow-2";
  bad.scheduler = "bogus";
  EXPECT_FALSE(svc.handle(bad, "test-peer").ok);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.value("serve.slow_requests"), 2u);
  svc.shutdown();

  std::rewind(sink);
  char buf[4096];
  std::vector<std::string> lines;
  while (std::fgets(buf, sizeof buf, sink) != nullptr) lines.emplace_back(buf);
  std::fclose(sink);
  ASSERT_EQ(lines.size(), 2u);

  auto parsed = support::parse_json(lines[0]);
  const auto* line = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(line, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(line->find("schema")->as_string(), "tmsd-slow-v1");
  EXPECT_EQ(line->find("request_id")->as_string(), "slow-1");
  EXPECT_EQ(line->find("peer")->as_string(), "test-peer");
  EXPECT_EQ(line->find("outcome")->as_string(), "ok");
  EXPECT_GE(line->find("total_us")->as_number(), 0.0);

  auto parsed2 = support::parse_json(lines[1]);
  const auto* line2 = std::get_if<support::JsonValue>(&parsed2);
  ASSERT_NE(line2, nullptr) << std::get<std::string>(parsed2);
  EXPECT_EQ(line2->find("request_id")->as_string(), "slow-2");
  EXPECT_EQ(line2->find("outcome")->as_string(), "bad-request");
}

TEST(Service, SlowThresholdFiltersFastRequests) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  opts.slow_ms = 60000;  // a minute: nothing in this test qualifies
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  opts.slow_log = sink;
  serve::CompileService svc(mach, nullptr, opts);

  const obs::CountersSnapshot before = obs::counters_snapshot();
  ASSERT_TRUE(svc.handle(chain_request()).ok);
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.value("serve.slow_requests"), 0u);
  svc.shutdown();
  std::rewind(sink);
  char buf[16];
  EXPECT_EQ(std::fgets(buf, sizeof buf, sink), nullptr) << "no line may be written";
  std::fclose(sink);
}

// --------------------------------------------------------- STATS / HEALTH

TEST(Service, StatsJsonIsCanonicalAndHealthLineTracksDrain) {
  machine::MachineModel mach;
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, nullptr, opts);
  ASSERT_TRUE(svc.handle(chain_request()).ok);

  auto parsed = support::parse_json(svc.stats_json());
  const auto* root = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(root, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(root->find("schema")->as_string(), "tmsd-stats-v1");
  EXPECT_GE(root->find("uptime_ms")->as_number(), 0.0);
  EXPECT_FALSE(root->find("draining")->as_bool());
  const auto* obs_obj = root->find("observability");
  ASSERT_NE(obs_obj, nullptr);
  ASSERT_TRUE(obs_obj->is_object());
  ASSERT_NE(obs_obj->find("counters"), nullptr);
  ASSERT_NE(obs_obj->find("time_histograms"), nullptr);

  EXPECT_EQ(svc.health_line().rfind("ok ", 0), 0u) << svc.health_line();
  svc.begin_drain();
  EXPECT_EQ(svc.health_line().rfind("draining ", 0), 0u) << svc.health_line();
  auto parsed2 = support::parse_json(svc.stats_json());
  const auto* root2 = std::get_if<support::JsonValue>(&parsed2);
  ASSERT_NE(root2, nullptr);
  EXPECT_TRUE(root2->find("draining")->as_bool());
  svc.shutdown();
}

TEST(Server, StatsAndHealthAnswerDuringDrainAndAreNotCompileRequests) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());

  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());
  const serve::Request req = chain_request();
  const auto warmup = client.compile(req);
  ASSERT_NE(std::get_if<serve::Response>(&warmup), nullptr);

  // Drain the *service* (what tmsd does first on SIGTERM): compile
  // requests now get kShutdown, but the side channel keeps answering on
  // the still-open connection.
  fx.service.begin_drain();

  const obs::CountersSnapshot before = obs::counters_snapshot();
  std::string stats_payload;
  ASSERT_FALSE(client.stats(stats_payload).has_value()) << "STATS must answer mid-drain";
  std::string health;
  ASSERT_FALSE(client.health(health).has_value()) << "HEALTH must answer mid-drain";
  EXPECT_EQ(health.rfind("draining ", 0), 0u) << health;
  const obs::CountersSnapshot d = obs::snapshot_delta(before, obs::counters_snapshot());
  EXPECT_EQ(d.value("serve.requests"), 0u) << "side channel must not count as compile traffic";
  EXPECT_EQ(d.value("serve.stats_requests"), 2u);

  auto parsed = support::parse_json(stats_payload);
  const auto* root = std::get_if<support::JsonValue>(&parsed);
  ASSERT_NE(root, nullptr) << std::get<std::string>(parsed);
  EXPECT_TRUE(root->find("draining")->as_bool());

  const auto refused = client.compile(req);
  const auto* resp = std::get_if<serve::Response>(&refused);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->code, serve::ErrorCode::kShutdown);
}

TEST(Server, StatsSnapshotsAreMonotonic) {
  ServerFixture fx;
  ASSERT_FALSE(fx.server.start().has_value());
  serve::Client client;
  ASSERT_FALSE(client.connect_unix(fx.dir.socket_path()).has_value());

  const auto served_requests = [&]() -> double {
    std::string payload;
    EXPECT_FALSE(client.stats(payload).has_value());
    auto parsed = support::parse_json(payload);
    const auto* root = std::get_if<support::JsonValue>(&parsed);
    EXPECT_NE(root, nullptr);
    if (root == nullptr) return -1;
    return root->find("observability")->find("counters")->find("serve.requests")->as_number();
  };

  const double before = served_requests();
  const serve::Request req = chain_request();
  const auto compiled = client.compile(req);
  ASSERT_NE(std::get_if<serve::Response>(&compiled), nullptr);
  const double after = served_requests();
  EXPECT_GE(after, before + 1.0) << "counters in consecutive snapshots must be monotone";
}

// ---------------------------------------------------- distributed tracing

TEST(Message, UntracedRequestSerialisesByteIdenticallyToPreTraceWire) {
  // The trace fields are omit-when-default: a request that carries no
  // trace context must produce the exact bytes a pre-trace client sent,
  // so old servers parse it and content hashes over the payload agree.
  serve::Request req = chain_request();
  req.request_id = "pin-1";
  const std::string bytes = serve::serialise_request(req);
  EXPECT_EQ(bytes.find("trace_id"), std::string::npos);
  EXPECT_EQ(bytes.find("parent_span_id"), std::string::npos);

  // And adding trace context must not disturb any other line.
  serve::Request traced = req;
  traced.trace_id = 0x0123456789abcdefULL;
  traced.parent_span_id = 0xfedcba9876543210ULL;
  std::string traced_bytes = serve::serialise_request(traced);
  EXPECT_NE(traced_bytes.find("trace_id 0123456789abcdef\n"), std::string::npos);
  EXPECT_NE(traced_bytes.find("parent_span_id fedcba9876543210\n"), std::string::npos);
  // Removing exactly the two trace lines recovers the untraced bytes.
  for (const char* key : {"trace_id ", "parent_span_id "}) {
    const std::size_t at = traced_bytes.find(key);
    ASSERT_NE(at, std::string::npos);
    traced_bytes.erase(at, traced_bytes.find('\n', at) - at + 1);
  }
  EXPECT_EQ(traced_bytes, bytes);
}

TEST(Message, TraceContextRoundTripsAndParsesAsZeroWhenAbsent) {
  serve::Request req = chain_request();
  req.trace_id = 0xABCDULL;
  req.parent_span_id = 0x1ULL;
  const auto parsed = serve::parse_request(serve::serialise_request(req));
  const auto* out = std::get_if<serve::Request>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->trace_id, 0xABCDULL);
  EXPECT_EQ(out->parent_span_id, 0x1ULL);

  const auto untraced = serve::parse_request(serve::serialise_request(chain_request()));
  const auto* u = std::get_if<serve::Request>(&untraced);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->trace_id, 0u);
  EXPECT_EQ(u->parent_span_id, 0u);
}

TEST(Message, ResponseEchoesTraceOnlyWhenTheRequestCarriedIt) {
  serve::Response resp;
  resp.id = 9;
  resp.ok = true;
  resp.scheduler = "tms";
  resp.ii = 2;
  resp.mii = 2;
  resp.slots = {0, 1};
  const std::string untraced = serve::serialise_response(resp);
  EXPECT_EQ(untraced.find("trace_id"), std::string::npos);
  EXPECT_EQ(untraced.find("span_id"), std::string::npos)
      << "a pre-trace client must never see trace keys";

  resp.trace_id = 0x1111ULL;
  resp.span_id = 0x2222ULL;
  const auto parsed = serve::parse_response(serve::serialise_response(resp));
  const auto* out = std::get_if<serve::Response>(&parsed);
  ASSERT_NE(out, nullptr) << std::get<std::string>(parsed);
  EXPECT_EQ(out->trace_id, 0x1111ULL);
  EXPECT_EQ(out->span_id, 0x2222ULL);
}

TEST(Service, TraceContextDoesNotChangeTheScheduleCacheKey) {
  // Same loop, same config, one request untraced and one traced: the
  // second must hit the cache entry the first created (the content key
  // ignores trace context), and only the traced one gets an echo.
  machine::MachineModel mach;
  driver::ScheduleCache cache(64);
  serve::ServiceOptions opts;
  opts.threads = 1;
  serve::CompileService svc(mach, &cache, opts);

  const serve::Response first = svc.handle(chain_request());
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.trace_id, 0u);
  EXPECT_EQ(first.span_id, 0u);

  serve::Request traced = chain_request();
  traced.trace_id = 0xFEEDULL;
  const serve::Response second = svc.handle(traced);
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_TRUE(second.cache_hit) << "trace context must not perturb the cache key";
  EXPECT_EQ(second.trace_id, 0xFEEDULL) << "traced requests get their id echoed";
  EXPECT_NE(second.span_id, 0u) << "the serve.request span id rides the response";
  svc.shutdown();
}

TEST(Server, StartFailsOnAnOverlongSocketPath) {
  machine::MachineModel mach;
  serve::ServiceOptions sopts;
  sopts.threads = 1;
  serve::CompileService service(mach, nullptr, sopts);
  serve::ServerOptions opts;
  opts.unix_path = std::string(200, 'a') + "/s";  // beyond sun_path
  serve::SocketServer server(service, opts);
  EXPECT_TRUE(server.start().has_value());
  service.shutdown();
}

}  // namespace
}  // namespace tms
