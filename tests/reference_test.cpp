#include <gtest/gtest.h>

#include "spmt/reference.hpp"
#include "spmt/values.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::spmt {
namespace {

TEST(Reference, Deterministic) {
  const ir::Loop loop = workloads::figure1_loop();
  const AddressStreams streams = default_streams(loop, 9);
  const auto a = run_reference(loop, streams, 200);
  const auto b = run_reference(loop, streams, 200);
  EXPECT_EQ(a.value_fingerprint, b.value_fingerprint);
  EXPECT_EQ(a.memory, b.memory);
}

TEST(Reference, ZeroIterationsEmpty) {
  const ir::Loop loop = test::tiny_doall();
  const AddressStreams streams = default_streams(loop, 1);
  const auto r = run_reference(loop, streams, 0);
  EXPECT_TRUE(r.memory.empty());
  EXPECT_EQ(r.value_fingerprint, 0u);
}

TEST(Reference, StoreCountBoundsMemoryFootprint) {
  const ir::Loop loop = test::tiny_doall();  // one store per iteration
  const AddressStreams streams = default_streams(loop, 1);
  const auto r = run_reference(loop, streams, 100);
  EXPECT_LE(r.memory.size(), 100u);
  EXPECT_GT(r.memory.size(), 0u);
}

TEST(Reference, CarriedValueChainsAcrossIterations) {
  // acc(i) = mix(seed, acc(i-1), load(i)): the fingerprint must change if
  // we change the iteration count by one.
  const ir::Loop loop = test::tiny_recurrence();
  const AddressStreams streams = default_streams(loop, 3);
  const auto a = run_reference(loop, streams, 50);
  const auto b = run_reference(loop, streams, 51);
  EXPECT_NE(a.value_fingerprint, b.value_fingerprint);
}

TEST(Reference, LiveInUsedForNegativeIterations) {
  // With distance 2, iterations 0 and 1 read the live-in; make sure the
  // first iterations differ from steady-state ones.
  ir::Loop loop("d2");
  const ir::NodeId a = loop.add_instr(ir::Opcode::kIAdd);
  const ir::NodeId b = loop.add_instr(ir::Opcode::kIAdd);
  loop.add_reg_flow(a, b, 2);
  loop.add_reg_flow(b, a, 0);  // wait: would create d0 cycle a->b? no: b->a d0 with a->b d2
  const AddressStreams streams(loop.num_instrs());
  const auto r = run_reference(loop, streams, 5);
  EXPECT_NE(r.value_fingerprint, 0u);
}

TEST(Reference, MemoryDependenceObserved) {
  // store -> load with probability 1: the load must read the store's
  // value from the previous iteration, changing its result versus an
  // independent stream.
  ir::Loop loop("md");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore);
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad);
  loop.add_mem_flow(st, ld, 1, 1.0);
  AddressStreams streams(loop.num_instrs());
  auto prod = AddressStreams::strided(0, 8, 1 << 16);
  streams.set(st, prod);
  streams.set(ld, AddressStreams::dependent(prod, 1, 1.0, 5,
                                            AddressStreams::strided(1 << 20, 8, 1 << 16)));
  const auto r = run_reference(loop, streams, 10);
  // Iteration i's load reads address of store at i-1; the loaded value
  // must be the store's value, not the memory init pattern.
  // Verify indirectly: the final memory at prod(9) is the store value of
  // iteration 9 (stores overwrite each address once).
  EXPECT_EQ(r.memory.count(prod(9)), 1u);
}

}  // namespace
}  // namespace tms::spmt
