#include <gtest/gtest.h>

#include <algorithm>

#include "sched/order.hpp"
#include "sched/window.hpp"
#include "test_util.hpp"
#include "workloads/figure1.hpp"

namespace tms::sched {
namespace {

using ir::Loop;
using ir::NodeId;
using ir::Opcode;

TEST(Order, EveryNodeExactlyOnce) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const Loop loop = test::random_loop(seed);
    const auto order = sms_node_order(loop, mach);
    ASSERT_EQ(static_cast<int>(order.size()), loop.num_instrs());
    std::vector<bool> seen(order.size(), false);
    for (const NodeId v : order) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]) << "node " << v << " repeated";
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
}

TEST(Order, MostCriticalRecurrenceFirst) {
  // Two recurrences: slow (fmul+fadd circuit, RecII 6) and fast (iadd self,
  // RecII 1 -> 1 cycle). SMS must order the slow one first.
  machine::MachineModel mach;
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kFMul);
  const NodeId b = loop.add_instr(Opcode::kFAdd);
  loop.add_reg_flow(a, b, 0);
  loop.add_reg_flow(b, a, 1);
  const NodeId c = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(c, c, 1);
  const auto order = sms_node_order(loop, mach);
  const auto pos = [&](NodeId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Order, Figure1RecurrenceBeforeAccumulators) {
  const Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const auto order = sms_node_order(loop, mach);
  const auto pos = [&](NodeId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  // Circuit nodes n0..n5 (ids 0,1,2,4,5) precede the accumulators n6, n7.
  for (const NodeId v : {0, 1, 2, 4, 5}) {
    EXPECT_LT(pos(v), pos(6));
    EXPECT_LT(pos(v), pos(7));
  }
}

TEST(Order, NodeSetsPartitionNodes) {
  machine::MachineModel mach;
  for (std::uint64_t seed = 130; seed < 150; ++seed) {
    const Loop loop = test::random_loop(seed);
    const auto sets = sms_node_sets(loop, mach);
    std::vector<int> count(static_cast<std::size_t>(loop.num_instrs()), 0);
    for (const auto& s : sets) {
      for (const NodeId v : s) ++count[static_cast<std::size_t>(v)];
    }
    for (const int c : count) EXPECT_EQ(c, 1);
  }
}

class WindowTest : public ::testing::Test {
 protected:
  machine::MachineModel mach;
};

TEST_F(WindowTest, PredecessorOnlyAscending) {
  Loop loop("l");
  const NodeId u = loop.add_instr(Opcode::kLoad);  // lat 3
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(u, v, 0);
  Schedule ps(loop, mach, 4);
  ps.set_slot(u, 2);
  const Window w = scheduling_window(ps, v, 0);
  ASSERT_EQ(w.candidates.size(), 4u);
  EXPECT_EQ(w.candidates.front(), 5);  // slot(u) + lat
  EXPECT_EQ(w.candidates.back(), 8);
  EXPECT_FALSE(w.two_sided);
}

TEST_F(WindowTest, SuccessorOnlyDescending) {
  // The paper's n6 case: successor n0 at cycle 0, dependence distance 1,
  // lat(n6)=1, II=8: window [7, 0] tried descending.
  Loop loop("l");
  const NodeId n6 = loop.add_instr(Opcode::kIAdd);
  const NodeId n0 = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(n6, n0, 1);
  Schedule ps(loop, mach, 8);
  ps.set_slot(n0, 0);
  const Window w = scheduling_window(ps, n6, 0);
  ASSERT_EQ(w.candidates.size(), 8u);
  EXPECT_EQ(w.candidates.front(), 7);  // 0 - 1 + 8
  EXPECT_EQ(w.candidates.back(), 0);
}

TEST_F(WindowTest, TwoSidedMayBeEmpty) {
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kLoad);   // lat 3
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, v, 0);
  loop.add_reg_flow(v, b, 0);
  Schedule ps(loop, mach, 4);
  ps.set_slot(a, 0);
  ps.set_slot(b, 2);  // v must be in [3, 1]: empty
  const Window w = scheduling_window(ps, v, 0);
  EXPECT_TRUE(w.two_sided);
  EXPECT_TRUE(w.candidates.empty());
}

TEST_F(WindowTest, TwoSidedClampsToBoth) {
  Loop loop("l");
  const NodeId a = loop.add_instr(Opcode::kIAdd);
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  const NodeId b = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(a, v, 0);
  loop.add_reg_flow(v, b, 0);
  Schedule ps(loop, mach, 8);
  ps.set_slot(a, 0);
  ps.set_slot(b, 4);
  const Window w = scheduling_window(ps, v, 0);
  ASSERT_FALSE(w.candidates.empty());
  EXPECT_EQ(w.candidates.front(), 1);
  EXPECT_EQ(w.candidates.back(), 3);  // b - lat(v)
}

TEST_F(WindowTest, NoNeighboursUsesHintWindow) {
  Loop loop("l");
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  (void)v;
  Schedule ps(loop, mach, 4);
  const Window w = scheduling_window(ps, 0, 7);
  ASSERT_EQ(w.candidates.size(), 4u);
  EXPECT_EQ(w.candidates.front(), 7);
}

TEST_F(WindowTest, SelfLoopDoesNotConstrain) {
  Loop loop("l");
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(v, v, 1);
  Schedule ps(loop, mach, 4);
  const Window w = scheduling_window(ps, v, 0);
  EXPECT_EQ(w.candidates.size(), 4u);
}

TEST_F(WindowTest, InterIterationPredecessorShiftsWindow) {
  Loop loop("l");
  const NodeId u = loop.add_instr(Opcode::kFMul);  // lat 4
  const NodeId v = loop.add_instr(Opcode::kIAdd);
  loop.add_reg_flow(u, v, 2);
  Schedule ps(loop, mach, 3);
  ps.set_slot(u, 1);
  const Window w = scheduling_window(ps, v, 0);
  // EStart = 1 + 4 - 3*2 = -1.
  EXPECT_EQ(w.candidates.front(), -1);
}

}  // namespace
}  // namespace tms::sched
