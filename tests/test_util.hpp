// Shared helpers for the test suite: small hand-built loops and random
// loop families (via the workload builder) for property tests.
#pragma once

#include <vector>

#include "ir/loop.hpp"
#include "machine/machine.hpp"
#include "machine/spmt_config.hpp"
#include "workloads/builder.hpp"

namespace tms::test {

/// A two-node chain: load -> fadd, no recurrences.
inline ir::Loop tiny_chain() {
  ir::Loop loop("tiny_chain");
  const ir::NodeId a = loop.add_instr(ir::Opcode::kLoad, "a");
  const ir::NodeId b = loop.add_instr(ir::Opcode::kFAdd, "b");
  loop.add_reg_flow(a, b, 0);
  return loop;
}

/// A simple accumulator recurrence: acc = acc + load.
inline ir::Loop tiny_recurrence() {
  ir::Loop loop("tiny_rec");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad, "ld");
  const ir::NodeId acc = loop.add_instr(ir::Opcode::kFAdd, "acc");
  loop.add_reg_flow(ld, acc, 0);
  loop.add_reg_flow(acc, acc, 1);
  return loop;
}

/// DOALL-style loop: independent load->compute->store, no cross-iteration
/// register dependences at all.
inline ir::Loop tiny_doall() {
  ir::Loop loop("tiny_doall");
  const ir::NodeId ld = loop.add_instr(ir::Opcode::kLoad, "ld");
  const ir::NodeId m = loop.add_instr(ir::Opcode::kFMul, "m");
  const ir::NodeId st = loop.add_instr(ir::Opcode::kStore, "st");
  loop.add_reg_flow(ld, m, 0);
  loop.add_reg_flow(m, st, 0);
  return loop;
}

/// A deterministic family of random loop shapes for property sweeps.
inline workloads::LoopShape random_shape(std::uint64_t seed) {
  support::Rng rng(seed);
  workloads::LoopShape s;
  s.name = "prop_" + std::to_string(seed);
  s.target_instrs = rng.uniform_int(6, 48);
  s.rec_circuit_delay = rng.chance(0.5) ? rng.uniform_int(4, 14) : 0;
  s.rec_circuit_len = rng.uniform_int(2, 5);
  s.accumulators = rng.uniform_int(0, 3);
  s.feeders = rng.uniform_int(0, 3);
  s.mem_deps = rng.uniform_int(0, 3);
  s.mem_prob_lo = 0.01;
  s.mem_prob_hi = 0.3;
  s.fp_fraction = rng.uniform(0.2, 0.9);
  s.seed = rng.fork_seed();
  return s;
}

inline ir::Loop random_loop(std::uint64_t seed) {
  return workloads::build_loop(random_shape(seed));
}

}  // namespace tms::test
