#!/usr/bin/env bash
# Prometheus exposition end-to-end: start tmsd with --metrics-dump,
# push a little traffic through it, trigger an on-demand dump with
# SIGUSR1, and lint the resulting text-format file with promlint (the
# same linter the obs unit tests run against the in-process writer).
# The drain-time final dump is linted too, and the serve latency
# histograms must show the traffic we generated.
#
# Usage: metrics_exposition.sh TMSD TMSQ PROMLINT LOOPS_DIR
set -u

if [ "$#" -ne 4 ]; then
  echo "usage: $0 TMSD TMSQ PROMLINT LOOPS_DIR" >&2
  exit 2
fi
TMSD=$1 TMSQ=$2 PROMLINT=$3 LOOPS_DIR=$4

WORK=$(mktemp -d metrics_expo.XXXXXX) || exit 1
DAEMON_PID=""

fail=0
note() { echo "metrics_exposition: $*"; }
flunk() {
  echo "metrics_exposition: FAIL: $*" >&2
  fail=1
}

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCKET="$WORK/d.sock"
LOG="$WORK/tmsd.log"
METRICS="$WORK/metrics.prom"

note "starting tmsd with --metrics-dump $METRICS"
"$TMSD" --socket "$SOCKET" --metrics-dump "$METRICS" >"$LOG" 2>&1 &
DAEMON_PID=$!
ready=0
for _ in $(seq 1 100); do
  if "$TMSQ" --socket "$SOCKET" --ping --timeout-ms 2000 >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    flunk "daemon died during startup; log follows"
    cat "$LOG" >&2
    DAEMON_PID=""
    exit 1
  fi
  sleep 0.1
done
if [ "$ready" -ne 1 ]; then
  flunk "daemon never became ready"
  exit 1
fi

note "driving traffic through the daemon"
loops=0
for loop in "$LOOPS_DIR"/*.loop; do
  [ -e "$loop" ] || continue
  loops=$((loops + 1))
  if ! "$TMSQ" --socket "$SOCKET" "$loop" --quiet >/dev/null 2>&1; then
    flunk "tmsq failed on $loop"
  fi
  [ "$loops" -ge 4 ] && break
done
if [ "$loops" -eq 0 ]; then
  flunk "no .loop files found in $LOOPS_DIR"
fi

note "SIGUSR1 must produce an on-demand dump"
rm -f "$METRICS"
kill -USR1 "$DAEMON_PID"
dumped=0
for _ in $(seq 1 100); do
  if [ -s "$METRICS" ]; then
    dumped=1
    break
  fi
  sleep 0.1
done
if [ "$dumped" -ne 1 ]; then
  flunk "no metrics file appeared within 10s of SIGUSR1"
else
  if ! "$PROMLINT" "$METRICS"; then
    flunk "promlint rejected the SIGUSR1 dump"
  fi
  if ! grep -q '^tms_serve_latency_total_bucket{le="+Inf"} ' "$METRICS"; then
    flunk "serve latency histogram missing from the SIGUSR1 dump"
  fi
  # The traffic above must be visible: the request counter is non-zero.
  if ! grep -Eq '^tms_serve_requests [1-9]' "$METRICS"; then
    flunk "serve.requests is zero in the SIGUSR1 dump"
  fi
fi

note "drain must write a final dump that also lints clean"
rm -f "$METRICS"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
code=$?
DAEMON_PID=""
if [ "$code" -ne 0 ]; then
  flunk "SIGTERM drain exited $code (want 0); log follows"
  cat "$LOG" >&2
fi
if [ ! -s "$METRICS" ]; then
  flunk "drain did not write a final metrics dump"
elif ! "$PROMLINT" "$METRICS"; then
  flunk "promlint rejected the drain-time dump"
fi

if [ "$fail" -eq 0 ]; then
  note "PASS"
fi
exit "$fail"
