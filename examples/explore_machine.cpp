// Example: architectural exploration.
//
// How do core count and interconnect latency change what the scheduler
// should do? This sweeps the SpMT configuration for one loop and prints
// the schedule TMS picks (II, C_delay) together with the cost model's
// prediction and the simulator's measurement — the two should track each
// other, which is the whole premise of Section 4.2.
//
//   ./build/examples/explore_machine
#include <cstdio>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "sched/postpass.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "support/table.hpp"
#include "workloads/figure1.hpp"

using namespace tms;

int main() {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  const std::int64_t iters = 4000;
  const spmt::AddressStreams streams = spmt::default_streams(loop, 5);

  std::printf("Figure-1 loop on varying SpMT machines (%lld iterations)\n\n", (long long)iters);
  support::TextTable t({"ncore", "C_reg_com", "TMS II", "TMS C_delay", "model cyc/iter",
                        "measured cyc/iter"});
  using TT = support::TextTable;

  for (const int ncore : {2, 4, 8}) {
    for (const int comm : {1, 3, 6}) {
      machine::SpmtConfig cfg;
      cfg.ncore = ncore;
      cfg.c_reg_com = comm;
      cfg.send_cycles = comm >= 3 ? 1 : 0;
      cfg.recv_cycles = comm >= 2 ? 1 : 0;
      cfg.hop_cycles = comm - cfg.send_cycles - cfg.recv_cycles;
      const auto tms = sched::tms_schedule(loop, mach, cfg);
      if (!tms) continue;
      const int cd = tms->schedule.c_delay(cfg);
      const double model = cost::per_iter_nomiss(tms->schedule.ii(), cd, cfg) +
                           cost::misspec_penalty(tms->schedule.ii(), cd, cfg) *
                               tms->schedule.misspec_probability(cfg);
      spmt::SpmtOptions opts;
      opts.iterations = iters;
      opts.keep_memory = false;
      const auto sim =
          spmt::run_spmt(loop, codegen::lower_kernel(tms->schedule, cfg), cfg, streams, opts);
      const double measured =
          static_cast<double>(sim.stats.total_cycles) / static_cast<double>(iters);
      t.add_row({std::to_string(ncore), std::to_string(comm), std::to_string(tms->schedule.ii()),
                 std::to_string(cd), TT::num(model, 2), TT::num(measured, 2)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nreading: more cores shift the optimum toward larger II / smaller C_delay;\n"
      "slower interconnect (C_reg_com) raises the floor under C_delay, eroding TLP —\n"
      "the paper's case for fast on-chip scalar operand networks.\n");
  return 0;
}
