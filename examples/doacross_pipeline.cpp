// Example: parallelising a DOACROSS loop.
//
// Builds the equake-style selected loop from the paper's Section 5.2 —
// a loop with cross-iteration register dependences that defeat classic
// DOALL parallelisation — schedules it with SMS and TMS, and compares
// single-threaded, SMS-on-SpMT and TMS-on-SpMT executions.
//
//   ./build/examples/doacross_pipeline [iterations]
#include <cstdio>
#include <cstdlib>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "spmt/single_core.hpp"
#include "workloads/doacross.hpp"

using namespace tms;

int main(int argc, char** argv) {
  const std::int64_t iters = argc > 1 ? std::atoll(argv[1]) : 3000;
  machine::MachineModel mach;
  machine::SpmtConfig cfg;

  auto selected = workloads::doacross_selected_loops();
  const ir::Loop& loop = selected[4].loop;  // equake
  std::printf("loop %s: %d instructions, coverage %.1f%% of program time\n",
              loop.name().c_str(), loop.num_instrs(), 100.0 * loop.coverage());

  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  if (!sms || !tms) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }
  const sched::LoopMetrics ms = sched::measure(sms->schedule, cfg);
  const sched::LoopMetrics mt = sched::measure(tms->schedule, cfg);
  std::printf("MII %d, LDP %d\n", ms.mii, ms.ldp);
  std::printf("SMS: II=%d MaxLive=%d C_delay=%d stages=%d\n", ms.ii, ms.max_live, ms.c_delay,
              ms.stages);
  std::printf("TMS: II=%d MaxLive=%d C_delay=%d stages=%d (P_max=%.2f, P_M=%.4f)\n", mt.ii,
              mt.max_live, mt.c_delay, mt.stages, tms->p_max, tms->misspec_probability);

  const spmt::AddressStreams streams = spmt::default_streams(loop, 2024);

  const auto single = spmt::run_single_threaded(loop, mach, cfg, streams, iters);

  spmt::SpmtOptions opts;
  opts.iterations = iters;
  opts.keep_memory = false;
  const auto run = [&](const sched::Schedule& s) {
    return spmt::run_spmt(loop, codegen::lower_kernel(s, cfg), cfg, streams, opts);
  };
  const auto r_sms = run(sms->schedule);
  const auto r_tms = run(tms->schedule);

  std::printf("\n%lld iterations on the quad-core SpMT machine:\n", (long long)iters);
  std::printf("  single-threaded: %9lld cycles (ipc %.2f)\n", (long long)single.total_cycles,
              single.ipc());
  std::printf("  SMS on 4 cores:  %9lld cycles (sync stalls %lld)\n",
              (long long)r_sms.stats.total_cycles, (long long)r_sms.stats.sync_stall_cycles);
  std::printf("  TMS on 4 cores:  %9lld cycles (sync stalls %lld, misspec %lld)\n",
              (long long)r_tms.stats.total_cycles, (long long)r_tms.stats.sync_stall_cycles,
              (long long)r_tms.stats.misspeculations);
  std::printf("\n  TMS speedup over single-threaded: %+.1f%%\n",
              100.0 * (static_cast<double>(single.total_cycles) /
                           static_cast<double>(r_tms.stats.total_cycles) -
                       1.0));
  std::printf("  TMS speedup over SMS:             %+.1f%%\n",
              100.0 * (static_cast<double>(r_sms.stats.total_cycles) /
                           static_cast<double>(r_tms.stats.total_cycles) -
                       1.0));
  return 0;
}
