// Example: choosing the parallelisation level of a loop nest.
//
// Section 6 of the paper lists outer-loop parallelisation as future
// work; this example shows the decision the extended compiler faces. A
// nest (outer loop around the equake-style inner loop) is priced under
// three strategies — sequential, inner-TMS (this paper) and coarse
// outer-TLS (the prior work the paper cites) — while the inner trip
// count shrinks, moving the crossover.
//
//   ./build/examples/nested_loops
#include <cstdio>

#include "nest/loop_nest.hpp"
#include "support/table.hpp"
#include "workloads/doacross.hpp"

using namespace tms;

int main() {
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  auto sel = workloads::doacross_selected_loops();

  std::printf("nest: outer loop (100 iterations, independent) around the equake inner loop\n\n");
  support::TextTable t({"inner trips", "sequential", "inner-TMS", "outer-TLS", "chosen"});
  for (const std::int64_t trips : {4, 8, 16, 32, 64, 128, 256, 512}) {
    nest::LoopNest nest;
    nest.name = "sweep";
    nest.inner = sel[4].loop;  // copy
    nest.inner_trips = trips;
    const nest::NestEval ev = nest::evaluate_nest(nest, mach, cfg, 100);
    t.add_row({std::to_string(trips), std::to_string(ev.cycles_sequential),
               std::to_string(ev.cycles_inner_tms), std::to_string(ev.cycles_outer_tls),
               nest::to_string(ev.best)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: with independent outer iterations, coarse outer threads win at any\n"
      "granularity here; an end-to-start outer dependence flips the choice to inner-TMS\n"
      "(see tests/nest_test.cpp). The crossover logic is exactly what 'extending TMS to\n"
      "outer loops' must automate.\n\n");

  std::printf("same nest with an end-to-start outer register dependence:\n\n");
  support::TextTable t2({"inner trips", "sequential", "inner-TMS", "outer-TLS", "chosen"});
  for (const std::int64_t trips : {4, 8, 16, 32, 64, 128, 256, 512}) {
    nest::LoopNest nest;
    nest.name = "sweep_dep";
    nest.inner = sel[4].loop;
    nest.inner_trips = trips;
    nest.outer_deps.push_back(nest::OuterDep{
        nest.inner.num_instrs() - 1, 0, ir::DepKind::kRegister, 1, 1.0});
    const nest::NestEval ev = nest::evaluate_nest(nest, mach, cfg, 100);
    t2.add_row({std::to_string(trips), std::to_string(ev.cycles_sequential),
                std::to_string(ev.cycles_inner_tms), std::to_string(ev.cycles_outer_tls),
                nest::to_string(ev.best)});
  }
  std::printf("%s", t2.render().c_str());
  return 0;
}
