// Quickstart: schedule the paper's motivating example (Figure 1) with SMS
// and with TMS, print both kernels, and simulate them on the quad-core
// SpMT machine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "codegen/kernel_program.hpp"
#include "cost/cost_model.hpp"
#include "machine/spmt_config.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "workloads/figure1.hpp"

namespace {

void print_schedule(const char* title, const tms::sched::Schedule& s,
                    const tms::machine::SpmtConfig& cfg) {
  std::printf("%s (II=%d, stages=%d)\n", title, s.ii(), s.stage_count());
  const tms::ir::Loop& loop = s.loop();
  for (tms::ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
    std::printf("  %-4s %-6s cycle=%2d row=%2d stage=%d\n", loop.instr(v).name.c_str(),
                std::string(tms::ir::to_string(loop.instr(v).op)).c_str(), s.slot(v), s.row(v),
                s.stage(v));
  }
  std::printf("  MaxLive=%d  C_delay=%d  P_M=%.4f\n", s.max_live(), s.c_delay(cfg),
              s.misspec_probability(cfg));
  std::printf("  inter-thread register deps:\n");
  for (const std::size_t ei : s.reg_dep_set()) {
    const tms::ir::DepEdge& e = loop.dep(ei);
    std::printf("    %s -> %s  d_ker=%d  sync=%d\n", loop.instr(e.src).name.c_str(),
                loop.instr(e.dst).name.c_str(), s.kernel_distance(e), s.sync_delay(e, cfg));
  }
}

}  // namespace

int main() {
  const tms::ir::Loop loop = tms::workloads::figure1_loop();
  const tms::machine::MachineModel mach = tms::workloads::figure1_machine();
  tms::machine::SpmtConfig cfg;  // quad-core, Table 1 parameters

  auto sms = tms::sched::sms_schedule(loop, mach);
  auto tmsr = tms::sched::tms_schedule(loop, mach, cfg);
  if (!sms || !tmsr) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }

  print_schedule("SMS", sms->schedule, cfg);
  std::printf("\n");
  print_schedule("TMS", tmsr->schedule, cfg);
  std::printf("\nTMS thresholds: C_delay<=%d, P_max=%.2f, F=%.2f cycles/iter, tried %d pairs\n",
              tmsr->c_delay_threshold, tmsr->p_max, tmsr->f_value, tmsr->pairs_tried);

  // Simulate both on the quad-core SpMT machine.
  const tms::spmt::AddressStreams streams = tms::spmt::default_streams(loop, /*seed=*/42);
  tms::spmt::SpmtOptions opts;
  opts.iterations = 2000;

  const auto kp_sms = tms::codegen::lower_kernel(sms->schedule, cfg);
  const auto kp_tms = tms::codegen::lower_kernel(tmsr->schedule, cfg);
  const auto r_sms = tms::spmt::run_spmt(loop, kp_sms, cfg, streams, opts);
  const auto r_tms = tms::spmt::run_spmt(loop, kp_tms, cfg, streams, opts);

  std::printf("\nSimulation (%lld iterations, %d cores):\n", (long long)opts.iterations,
              cfg.ncore);
  std::printf("  SMS: %lld cycles, sync stalls %lld, misspec %lld\n",
              (long long)r_sms.stats.total_cycles, (long long)r_sms.stats.sync_stall_cycles,
              (long long)r_sms.stats.misspeculations);
  std::printf("  TMS: %lld cycles, sync stalls %lld, misspec %lld\n",
              (long long)r_tms.stats.total_cycles, (long long)r_tms.stats.sync_stall_cycles,
              (long long)r_tms.stats.misspeculations);
  std::printf("  speedup TMS over SMS: %.1f%%\n",
              100.0 * (static_cast<double>(r_sms.stats.total_cycles) /
                           static_cast<double>(r_tms.stats.total_cycles) -
                       1.0));
  return 0;
}
