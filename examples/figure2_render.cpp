// Example: reproduce the paper's Figure 2 as text.
//
// Schedules the Figure-1 DDG with SMS and TMS and renders (a)-(f): the
// flat schedules, the kernels with stage annotations and inter-thread
// dependences, and the model execution timelines on two cores — showing
// how SMS's lifetime-minimal placement serialises consecutive threads
// while TMS overlaps them.
#include <cstdio>

#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "viz/render.hpp"
#include "workloads/figure1.hpp"

using namespace tms;

int main() {
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;
  cfg.ncore = 2;  // the paper's Figure 2 uses a two-core machine

  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  if (!sms || !tms) return 1;

  std::printf("=========== (a,b,c): SMS ===========\n");
  std::printf("%s\n", viz::render_flat_schedule(sms->schedule).c_str());
  std::printf("%s\n", viz::render_kernel(sms->schedule, cfg).c_str());
  std::printf("%s\n", viz::render_execution(sms->schedule, cfg, 4).c_str());

  std::printf("=========== (d,e,f): TMS ===========\n");
  std::printf("%s\n", viz::render_flat_schedule(tms->schedule).c_str());
  std::printf("%s\n", viz::render_kernel(tms->schedule, cfg).c_str());
  std::printf("%s\n", viz::render_execution(tms->schedule, cfg, 4).c_str());

  std::printf("=========== DDG (Graphviz dot) ===========\n%s",
              viz::render_ddg_dot(loop).c_str());
  return 0;
}
