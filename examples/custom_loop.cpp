// Example: bring your own loop.
//
// Shows the full public API surface end to end on a hand-written loop —
// the kind a compiler front-end would hand to this library:
//
//   for (i = 0; i < N; i++) {
//     t    = a[i] * coef;        // load, fmul
//     s    = s + t;              // fadd accumulator (cross-iteration)
//     b[i] = t - b[i-1]_approx;  // speculated dependence on b's store
//   }
//
// Builds the DDG, validates it, schedules with SMS and TMS, inspects the
// kernel, and runs both on the simulated SpMT quad-core, checking the
// committed memory image against the sequential reference interpreter.
#include <cstdio>

#include "codegen/kernel_program.hpp"
#include "ir/graph.hpp"
#include "sched/mii.hpp"
#include "sched/postpass.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/reference.hpp"
#include "spmt/sim.hpp"

using namespace tms;

int main() {
  // --- 1. Build the loop IR -------------------------------------------
  ir::Loop loop("custom");
  const ir::NodeId i_var = loop.add_instr(ir::Opcode::kIAdd, "i++");
  loop.add_reg_flow(i_var, i_var, 1);
  loop.mark_live_in(i_var);

  const ir::NodeId ld_a = loop.add_instr(ir::Opcode::kLoad, "load a[i]");
  loop.add_reg_flow(i_var, ld_a, 0);

  const ir::NodeId mul = loop.add_instr(ir::Opcode::kFMul, "t = a[i]*coef");
  loop.add_reg_flow(ld_a, mul, 0);

  const ir::NodeId acc = loop.add_instr(ir::Opcode::kFAdd, "s += t");
  loop.add_reg_flow(mul, acc, 0);
  loop.add_reg_flow(acc, acc, 1);  // the DOACROSS dependence
  loop.mark_live_in(acc);

  const ir::NodeId ld_b = loop.add_instr(ir::Opcode::kLoad, "load b[i-1]");
  loop.add_reg_flow(i_var, ld_b, 0);
  const ir::NodeId sub = loop.add_instr(ir::Opcode::kFSub, "t - b[i-1]");
  loop.add_reg_flow(mul, sub, 0);
  loop.add_reg_flow(ld_b, sub, 0);
  const ir::NodeId st_b = loop.add_instr(ir::Opcode::kStore, "store b[i]");
  loop.add_reg_flow(sub, st_b, 0);
  loop.add_reg_flow(i_var, st_b, 0);
  // Profiled: b[i-1] loads hit last iteration's store ~30% of the time.
  loop.add_mem_flow(st_b, ld_b, 1, 0.3);

  if (const auto err = loop.validate()) {
    std::fprintf(stderr, "invalid loop: %s\n", err->c_str());
    return 1;
  }

  // --- 2. Inspect the DDG ---------------------------------------------
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  std::printf("loop '%s': %d instructions, %zu dependences\n", loop.name().c_str(),
              loop.num_instrs(), loop.deps().size());
  std::printf("ResII=%d RecII=%d MII=%d LDP=%d, %d non-trivial SCCs\n",
              sched::res_ii(loop, mach), sched::rec_ii(loop, mach), sched::min_ii(loop, mach),
              ir::longest_dependence_path(loop, mach.latencies(loop)),
              ir::count_nontrivial_sccs(loop));

  // --- 3. Schedule ------------------------------------------------------
  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  if (!sms || !tms) return 1;
  const auto show = [&](const char* tag, const sched::Schedule& s) {
    const sched::LoopMetrics m = sched::measure(s, cfg);
    std::printf("%s: II=%d stages=%d MaxLive=%d C_delay=%d P_M=%.3f\n", tag, m.ii, m.stages,
                m.max_live, m.c_delay, m.misspec_probability);
    for (ir::NodeId v = 0; v < loop.num_instrs(); ++v) {
      std::printf("    row %2d stage %d  %s\n", s.row(v), s.stage(v),
                  loop.instr(v).name.c_str());
    }
  };
  show("SMS", sms->schedule);
  show("TMS", tms->schedule);

  // --- 4. Simulate and check semantics ---------------------------------
  const spmt::AddressStreams streams = spmt::default_streams(loop, 99);
  spmt::SpmtOptions opts;
  opts.iterations = 1000;
  opts.keep_memory = true;
  const auto sim =
      spmt::run_spmt(loop, codegen::lower_kernel(tms->schedule, cfg), cfg, streams, opts);
  const auto ref = spmt::run_reference(loop, streams, opts.iterations);

  std::printf("\nTMS on 4 cores: %lld cycles for %lld iterations (%lld misspeculations)\n",
              (long long)sim.stats.total_cycles, (long long)opts.iterations,
              (long long)sim.stats.misspeculations);
  const bool ok = sim.value_fingerprint == ref.value_fingerprint && sim.memory == ref.memory;
  std::printf("committed state equals sequential semantics: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
