// Example: measured execution traces.
//
// Runs the Figure-1 loop under SMS and TMS with per-thread tracing and
// prints the measured Gantt timelines side by side — the empirical
// counterpart of figure2_render's model-based view — plus the CSV export
// a notebook would consume.
//
//   ./build/examples/trace_timeline [iterations]
#include <cstdio>
#include <cstdlib>

#include "codegen/kernel_program.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/sim.hpp"
#include "workloads/figure1.hpp"

using namespace tms;

int main(int argc, char** argv) {
  const std::int64_t iters = argc > 1 ? std::atoll(argv[1]) : 600;
  const ir::Loop loop = workloads::figure1_loop();
  const machine::MachineModel mach = workloads::figure1_machine();
  machine::SpmtConfig cfg;

  const auto sms = sched::sms_schedule(loop, mach);
  const auto tms = sched::tms_schedule(loop, mach, cfg);
  if (!sms || !tms) return 1;

  const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
  spmt::SpmtOptions opts;
  opts.iterations = iters;
  opts.keep_memory = false;
  opts.collect_trace = true;

  const auto run = [&](const sched::Schedule& s) {
    return spmt::run_spmt(loop, codegen::lower_kernel(s, cfg), cfg, streams, opts);
  };
  const auto r_sms = run(sms->schedule);
  const auto r_tms = run(tms->schedule);

  std::printf("--- SMS (II=%d, C_delay=%d): %lld cycles ---\n", sms->schedule.ii(),
              sms->schedule.c_delay(cfg), (long long)r_sms.stats.total_cycles);
  std::printf("%s\n", spmt::trace_to_ascii(r_sms.trace, 10).c_str());
  std::printf("--- TMS (II=%d, C_delay=%d): %lld cycles ---\n", tms->schedule.ii(),
              tms->schedule.c_delay(cfg), (long long)r_tms.stats.total_cycles);
  std::printf("%s\n", spmt::trace_to_ascii(r_tms.trace, 10).c_str());

  std::printf("--- first 6 TMS trace rows (CSV) ---\n");
  std::vector<spmt::ThreadTrace> head(r_tms.trace.begin(),
                                      r_tms.trace.begin() + std::min<std::size_t>(6, r_tms.trace.size()));
  std::printf("%s", spmt::trace_to_csv(head).c_str());
  return 0;
}
