// tmsd — persistent compile-service daemon.
//
// Serves scheduling requests over a Unix-domain socket (and optionally
// loopback TCP) so repeated compilations amortise one process-wide,
// content-addressed ScheduleCache instead of paying cold-start per
// invocation. The wire protocol, admission control, and drain semantics
// are documented in docs/SERVING.md; tmsq and loadgen are the clients.
//
// Usage:
//   tmsd --socket PATH [options]
//     --socket PATH            Unix-domain socket to listen on (required)
//     --tcp-port N             also listen on 127.0.0.1:N (0 = ephemeral;
//                              the bound port is printed on startup)
//     --threads N              compile workers          (default ncpu)
//     --queue-capacity N       admission high-water mark (default 64)
//     --retry-after-ms N       backoff hint in overload responses
//                                                       (default 100)
//     --max-connections N      live connections before turn-away
//                                                       (default 64)
//     --idle-timeout-ms N      close idle connections   (default 30000,
//                              0 = never)
//     --cache-dir DIR          persistent schedule cache on disk
//     --cache-capacity N       in-memory cache entries  (default 65536)
//     --cache-disk-max-bytes N bound the on-disk cache  (default 0 = unbounded)
//     --no-cache               disable the schedule cache entirely
//     --peer PATH              Unix socket of a ring-sibling tmsd; may be
//                              repeated. On a local cache miss the daemon
//                              PEEKs each peer in order before scheduling
//                              fresh (cache peer-fill, docs/ROUTING.md)
//     --peer-timeout-ms N      per-peer PEEK send/recv timeout (default 1000)
//     --policy P               default core-allocation policy for requests
//                              that don't carry their own: modulo (default),
//                              round_robin_stride, locality, dep_distance
//     --policy-stride N        default stride for round_robin_stride
//     --policy-block N         default block size for locality
//     --bus-bytes N            default shared-bus bytes per register
//                              transfer (0 = contention term off)
//     --bus-bandwidth N        default shared-bus bytes per cycle (16)
//     --no-validate            skip the independent validator per request
//     --sim-verify             simulator-backed verification: refuse any
//                              response whose bounded event-driven SpMT
//                              run diverges from the sequential reference
//                              (spmt::quick_estimate, docs/SIMULATOR.md)
//     --sim-verify-iters N     iterations for the sim-verify run
//                              (default 0 = auto-sized from ncore)
//     --counters               print the counter table on exit
//     --metrics-dump PATH      write Prometheus text exposition to PATH
//                              on SIGUSR1 (and per --metrics-interval-ms);
//                              written atomically via rename
//     --metrics-interval-ms N  also dump every N ms (0 = signal-only)
//     --slow-ms N              log requests taking >= N ms as one
//                              canonical-JSON line each (0 = all; default
//                              off); counted in serve.slow_requests
//     --slow-log PATH          append slow-request lines to PATH instead
//                              of stderr
//     --flight-size N          flight-recorder ring capacity: the last N
//                              requests' full outcome records, always on
//                              (default 256; docs/SERVING.md)
//     --flight-dump PATH       write the tmsd-flight-v1 dump to PATH on
//                              SIGUSR2, on each slow request (rate
//                              limited to ~1/s), and at drain; written
//                              atomically via rename. Without a PATH,
//                              SIGUSR2 prints the dump to stderr
//
// Lifecycle: on SIGTERM or SIGINT the daemon stops accepting, answers
// already-connected clients' in-flight requests, drains the compile
// queue, and exits 0. A second signal during drain exits immediately
// (code 130). SIGUSR1 never exits — it only triggers a metrics dump;
// SIGUSR2 likewise only dumps the flight recorder. Readiness is
// signalled by the "tmsd: listening on ..." line on stdout (flushed
// before the first accept). Live introspection needs no signal at all:
// the STATS/HEALTH/FLIGHT protocol verbs answer on any connection,
// even mid-drain (see docs/SERVING.md).
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "driver/schedule_cache.hpp"
#include "machine/machine.hpp"
#include "obs/counters.hpp"
#include "obs/flight.hpp"
#include "obs/prometheus.hpp"
#include "policy/policy.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--tcp-port N] [--threads N] [--queue-capacity N]\n"
               "          [--retry-after-ms N] [--max-connections N] [--idle-timeout-ms N]\n"
               "          [--cache-dir DIR] [--cache-capacity N] [--cache-disk-max-bytes N]\n"
               "          [--no-cache] [--peer PATH]... [--peer-timeout-ms N]\n"
               "          [--policy NAME] [--policy-stride N] [--policy-block N]\n"
               "          [--bus-bytes N] [--bus-bandwidth N]\n"
               "          [--no-validate] [--sim-verify] [--sim-verify-iters N] [--counters]\n"
               "          [--metrics-dump PATH] [--metrics-interval-ms N]\n"
               "          [--slow-ms N] [--slow-log PATH]\n"
               "          [--flight-size N] [--flight-dump PATH]\n",
               argv0);
  return 2;
}

// Self-pipe: the handler does the only async-signal-safe thing — one
// write — and the main thread, blocked in poll() on the read end, does
// the actual drain. Volatile so a second signal can be detected.
int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_signal_count = 0;
volatile sig_atomic_t g_dump_requested = 0;
volatile sig_atomic_t g_flight_requested = 0;

void on_signal(int) {
  g_signal_count = static_cast<sig_atomic_t>(g_signal_count + 1);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void on_sigusr1(int) {
  g_dump_requested = 1;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void on_sigusr2(int) {
  g_flight_requested = 1;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Snapshot -> Prometheus text -> temp file -> rename, so a scraper
/// reading `path` never sees a half-written exposition. The output is
/// linted before it lands; a lint failure is a bug in the exporter, so
/// it is loud but non-fatal.
void dump_metrics(const std::string& path) {
  const std::string text = obs::write_prometheus_text(obs::counters_snapshot());
  if (const auto err = obs::lint_prometheus_text(text)) {
    std::fprintf(stderr, "tmsd: metrics exposition failed its own lint: %s\n", err->c_str());
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tmsd: cannot write %s: %s\n", tmp.c_str(), std::strerror(errno));
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "tmsd: rename %s: %s\n", path.c_str(), std::strerror(errno));
  }
}

/// tmsd-flight-v1 dump -> temp file -> rename (or stderr when no path is
/// configured, so a bare SIGUSR2 still surfaces the ring).
void dump_flight(const std::string& path, const obs::FlightRecorder& recorder) {
  const std::string text = obs::flight_to_json(recorder);
  if (path.empty()) {
    std::fprintf(stderr, "%s\n", text.c_str());
    obs::counters().serve_flight_dumps.add(1);
    return;
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tmsd: cannot write %s: %s\n", tmp.c_str(), std::strerror(errno));
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "tmsd: rename %s: %s\n", path.c_str(), std::strerror(errno));
    return;
  }
  obs::counters().serve_flight_dumps.add(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  serve::ServiceOptions service_opts;
  serve::ServerOptions server_opts;
  std::string cache_dir;
  std::size_t cache_capacity = 1 << 16;
  std::uint64_t cache_disk_max_bytes = 0;
  bool use_cache = true;
  std::vector<std::string> peers;
  int peer_timeout_ms = 1000;
  bool print_counters = false;
  std::string metrics_dump;
  std::int64_t metrics_interval_ms = 0;
  std::string slow_log_path;
  std::size_t flight_size = 256;
  std::string flight_dump;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--tcp-port") {
      tcp_port = std::atoi(next("--tcp-port"));
    } else if (a == "--threads") {
      service_opts.threads = std::atoi(next("--threads"));
    } else if (a == "--queue-capacity") {
      service_opts.queue_capacity = std::strtoull(next("--queue-capacity"), nullptr, 10);
    } else if (a == "--retry-after-ms") {
      service_opts.retry_after_ms = std::atoll(next("--retry-after-ms"));
    } else if (a == "--max-connections") {
      server_opts.max_connections = std::atoi(next("--max-connections"));
    } else if (a == "--idle-timeout-ms") {
      server_opts.idle_timeout_ms = std::atoll(next("--idle-timeout-ms"));
    } else if (a == "--cache-dir") {
      cache_dir = next("--cache-dir");
    } else if (a == "--cache-capacity") {
      cache_capacity = std::strtoull(next("--cache-capacity"), nullptr, 10);
    } else if (a == "--cache-disk-max-bytes") {
      cache_disk_max_bytes = std::strtoull(next("--cache-disk-max-bytes"), nullptr, 10);
    } else if (a == "--no-cache") {
      use_cache = false;
    } else if (a == "--peer") {
      peers.emplace_back(next("--peer"));
    } else if (a == "--peer-timeout-ms") {
      peer_timeout_ms = std::atoi(next("--peer-timeout-ms"));
    } else if (a == "--policy") {
      const char* name = next("--policy");
      if (!policy::policy_from_string(name, service_opts.policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n", name);
        return 2;
      }
    } else if (a == "--policy-stride") {
      service_opts.policy_stride = std::atoi(next("--policy-stride"));
    } else if (a == "--policy-block") {
      service_opts.policy_block = std::atoi(next("--policy-block"));
    } else if (a == "--bus-bytes") {
      service_opts.bus_bytes_per_transfer = std::atoi(next("--bus-bytes"));
    } else if (a == "--bus-bandwidth") {
      service_opts.bus_bytes_per_cycle = std::atoi(next("--bus-bandwidth"));
    } else if (a == "--no-validate") {
      service_opts.validate = false;
    } else if (a == "--counters") {
      print_counters = true;
    } else if (a == "--metrics-dump") {
      metrics_dump = next("--metrics-dump");
    } else if (a == "--metrics-interval-ms") {
      metrics_interval_ms = std::atoll(next("--metrics-interval-ms"));
    } else if (a == "--sim-verify") {
      service_opts.sim_verify = true;
    } else if (a == "--sim-verify-iters") {
      service_opts.sim_verify_iterations = std::atoll(next("--sim-verify-iters"));
    } else if (a == "--slow-ms") {
      service_opts.slow_ms = std::atoll(next("--slow-ms"));
    } else if (a == "--slow-log") {
      slow_log_path = next("--slow-log");
    } else if (a == "--flight-size") {
      flight_size = std::strtoull(next("--flight-size"), nullptr, 10);
    } else if (a == "--flight-dump") {
      flight_dump = next("--flight-dump");
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return usage(argv[0]);
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction sa_usr1 {};
  sa_usr1.sa_handler = on_sigusr1;
  ::sigemptyset(&sa_usr1.sa_mask);
  ::sigaction(SIGUSR1, &sa_usr1, nullptr);
  struct sigaction sa_usr2 {};
  sa_usr2.sa_handler = on_sigusr2;
  ::sigemptyset(&sa_usr2.sa_mask);
  ::sigaction(SIGUSR2, &sa_usr2, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::FILE* slow_log_file = nullptr;
  if (!slow_log_path.empty()) {
    slow_log_file = std::fopen(slow_log_path.c_str(), "a");
    if (slow_log_file == nullptr) {
      std::fprintf(stderr, "tmsd: cannot open slow log %s: %s\n", slow_log_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    service_opts.slow_log = slow_log_file;
  }

  machine::MachineModel mach;
  std::optional<driver::ScheduleCache> cache;
  if (use_cache) cache.emplace(cache_capacity, cache_dir, cache_disk_max_bytes);

  // The flight recorder is always on (the FLIGHT verb and SIGUSR2 need
  // no opt-in); --flight-size only resizes the ring. A configured
  // --flight-dump additionally snapshots the ring on every slow request,
  // rate limited so a burst of slow requests costs one dump per second.
  obs::FlightRecorder flight(flight_size == 0 ? 1 : flight_size);
  service_opts.flight = &flight;
  std::atomic<std::int64_t> last_slow_dump_ms{-1000000};
  if (!flight_dump.empty()) {
    service_opts.on_slow = [&flight, &flight_dump, &last_slow_dump_ms]() {
      const std::int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                      std::chrono::steady_clock::now().time_since_epoch())
                                      .count();
      std::int64_t prev = last_slow_dump_ms.load(std::memory_order_relaxed);
      if (now_ms - prev < 1000) return;
      if (!last_slow_dump_ms.compare_exchange_strong(prev, now_ms,
                                                     std::memory_order_relaxed)) {
        return;  // another slow request is dumping right now
      }
      dump_flight(flight_dump, flight);
    };
  }

  if (!peers.empty() && use_cache) {
    // Cache peer-fill: on a local miss, PEEK each ring sibling in order
    // (one fresh connection per probe — trivially thread-safe from the
    // compile workers; a dead peer is a fast connect error and a miss).
    service_opts.peer_fill = [peers, peer_timeout_ms](std::uint64_t key, int expect_instrs)
        -> std::optional<driver::ScheduleCache::Entry> {
      for (const std::string& peer : peers) {
        serve::Client client;
        if (client.connect_unix(peer, peer_timeout_ms).has_value()) continue;
        std::optional<driver::ScheduleCache::Entry> entry;
        if (client.peek({key, expect_instrs}, entry).has_value()) continue;
        if (entry.has_value()) return entry;
      }
      return std::nullopt;
    };
  }

  serve::CompileService service(mach, cache ? &*cache : nullptr, service_opts);
  server_opts.unix_path = socket_path;
  server_opts.tcp_port = tcp_port;
  serve::SocketServer server(service, server_opts);
  if (const auto err = server.start()) {
    std::fprintf(stderr, "tmsd: %s\n", err->c_str());
    return 1;
  }

  std::printf("tmsd: listening on %s", socket_path.c_str());
  if (server.tcp_port() >= 0) std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf(" (%d worker(s), queue %zu)\n", service.pool().threads(),
              service.options().queue_capacity);
  std::fflush(stdout);

  // Block until a terminating signal arrives. SIGUSR1 (and the periodic
  // timer, when --metrics-interval-ms is set) only dumps metrics and
  // keeps serving.
  const int poll_timeout =
      !metrics_dump.empty() && metrics_interval_ms > 0 ? static_cast<int>(metrics_interval_ms)
                                                       : -1;
  for (;;) {
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int r = ::poll(&pfd, 1, poll_timeout);
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      // Periodic dump tick.
      if (!metrics_dump.empty()) dump_metrics(metrics_dump);
      continue;
    }
    if (r > 0 && (pfd.revents & POLLIN) != 0) {
      char buf[16];
      [[maybe_unused]] const ssize_t n = ::read(g_signal_pipe[0], buf, sizeof buf);
      bool handled = false;
      if (g_dump_requested != 0 && g_signal_count == 0) {
        g_dump_requested = 0;
        if (!metrics_dump.empty()) dump_metrics(metrics_dump);
        handled = true;
      }
      if (g_flight_requested != 0 && g_signal_count == 0) {
        g_flight_requested = 0;
        dump_flight(flight_dump, flight);
        handled = true;
      }
      if (handled) continue;
      break;
    }
    if (r < 0) break;
  }

  std::printf("tmsd: draining\n");
  std::fflush(stdout);

  // Transport first (no new requests can arrive), then the service (the
  // already-admitted queue runs dry). A second signal mid-drain aborts.
  server.drain();
  if (g_signal_count > 1) {
    std::fprintf(stderr, "tmsd: second signal during drain, aborting\n");
    return 130;
  }
  service.shutdown();

  if (cache.has_value()) {
    const auto stats = cache->stats();
    std::printf("tmsd: cache at exit: %llu hit(s), %llu miss(es), %llu insert(s), "
                "%llu byte(s) on disk\n",
                (unsigned long long)stats.hits(), (unsigned long long)stats.misses,
                (unsigned long long)stats.inserts, (unsigned long long)stats.disk_bytes);
  }
  if (print_counters) {
    std::printf("%s", obs::counters_to_text(obs::counters_snapshot()).c_str());
  }
  // Final exposition so a scrape after shutdown sees the complete tally,
  // and a last flight dump so the final requests' records survive exit.
  if (!metrics_dump.empty()) dump_metrics(metrics_dump);
  if (!flight_dump.empty()) dump_flight(flight_dump, flight);
  if (slow_log_file != nullptr) std::fclose(slow_log_file);
  std::printf("tmsd: drained, exiting\n");
  return 0;
}
