// tmsc — command-line driver: schedule (and optionally simulate) a loop
// described in the text format of src/ir/textio.hpp.
//
// Usage:
//   tmsc <loop-file> [options]
//     --scheduler sms|ims|tms   (default tms)
//     --ncore N                 (default 4)
//     --unroll U                (default 1)
//     --simulate N              simulate N iterations on the SpMT machine
//     --baseline N              also run the single-threaded core
//     --render flat|kernel|exec|dot|all   (default kernel)
//     --metrics                 print the Table-2 style metric line
//     --profile N               profile dependence frequencies over N
//                               iterations and re-annotate before scheduling
//     --registers R             register-file budget (MaxLive + copies)
//     --policy P                core-allocation policy: modulo (default),
//                               round_robin_stride, locality, dep_distance
//     --policy-stride N         stride for round_robin_stride (default 1)
//     --policy-block N          block size for locality        (default 1)
//     --bus-bytes N             shared-bus bytes per register transfer
//                               (default 0 = contention term off)
//     --bus-bandwidth N         shared-bus bytes per cycle     (default 16)
//     --remote SOCKET           schedule on a running tmsd (Unix socket
//                               path) instead of in-process; everything
//                               downstream (render, metrics, simulate)
//                               runs locally on the returned schedule
//     --deadline-ms N           per-request deadline for --remote
//
// Example:
//   ./build/tools/tmsc examples/loops/dotprod.loop --simulate 2000 --metrics
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "codegen/kernel_program.hpp"
#include "ir/textio.hpp"
#include "policy/policy.hpp"
#include "ir/unroll.hpp"
#include "sched/ims.hpp"
#include "sched/postpass.hpp"
#include "sched/regpressure.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "spmt/address.hpp"
#include "spmt/profile.hpp"
#include "spmt/sim.hpp"
#include "serve/client.hpp"
#include "spmt/single_core.hpp"
#include "viz/render.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <loop-file> [--scheduler sms|ims|tms] [--ncore N] [--unroll U]\n"
               "          [--simulate N] [--baseline N] [--render flat|kernel|exec|dot|all]\n"
               "          [--profile N] [--registers N] [--metrics]\n"
               "          [--policy modulo|round_robin_stride|locality|dep_distance]\n"
               "          [--policy-stride N] [--policy-block N]\n"
               "          [--bus-bytes N] [--bus-bandwidth N]\n"
               "          [--remote SOCKET] [--deadline-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string scheduler = "tms";
  std::string render = "kernel";
  int ncore = 4;
  int unroll_factor = 1;
  long long simulate = 0;
  long long baseline = 0;
  long long profile = 0;
  int registers = 0;
  bool metrics = false;
  std::string remote;
  long long deadline_ms = 0;
  machine::AllocPolicy policy = machine::AllocPolicy::kModulo;
  int policy_stride = 1;
  int policy_block = 1;
  int bus_bytes = 0;
  int bus_bandwidth = 16;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--scheduler") {
      scheduler = next("--scheduler");
    } else if (a == "--ncore") {
      ncore = std::atoi(next("--ncore"));
    } else if (a == "--unroll") {
      unroll_factor = std::atoi(next("--unroll"));
    } else if (a == "--simulate") {
      simulate = std::atoll(next("--simulate"));
    } else if (a == "--baseline") {
      baseline = std::atoll(next("--baseline"));
    } else if (a == "--render") {
      render = next("--render");
    } else if (a == "--profile") {
      profile = std::atoll(next("--profile"));
    } else if (a == "--registers") {
      registers = std::atoi(next("--registers"));
    } else if (a == "--metrics") {
      metrics = true;
    } else if (a == "--remote") {
      remote = next("--remote");
    } else if (a == "--deadline-ms") {
      deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (a == "--policy") {
      const char* name = next("--policy");
      if (!policy::policy_from_string(name, policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n", name);
        return 2;
      }
    } else if (a == "--policy-stride") {
      policy_stride = std::atoi(next("--policy-stride"));
    } else if (a == "--policy-block") {
      policy_block = std::atoi(next("--policy-block"));
    } else if (a == "--bus-bytes") {
      bus_bytes = std::atoi(next("--bus-bytes"));
    } else if (a == "--bus-bandwidth") {
      bus_bandwidth = std::atoi(next("--bus-bandwidth"));
    } else {
      return usage(argv[0]);
    }
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  auto parsed = ir::parse_loop(file);
  if (const auto* err = std::get_if<ir::ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], err->line, err->message.c_str());
    return 1;
  }
  ir::Loop loop = std::get<ir::Loop>(std::move(parsed));
  if (unroll_factor > 1) loop = ir::unroll(loop, unroll_factor);

  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.ncore = ncore;
  cfg.policy = policy;
  cfg.policy_stride = policy_stride;
  cfg.policy_block = policy_block;
  cfg.bus_bytes_per_transfer = bus_bytes;
  cfg.bus_bytes_per_cycle = bus_bandwidth;

  if (profile > 0) {
    const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
    const auto prof = spmt::profile_dependences(loop, streams, profile);
    for (const auto& p : prof) {
      const ir::DepEdge& e = loop.dep(p.edge);
      std::printf("profiled %s -> %s: annotated p=%.3f, measured %.3f (%lld/%lld)\n",
                  loop.instr(e.src).name.c_str(), loop.instr(e.dst).name.c_str(), e.probability,
                  p.frequency(), (long long)p.collisions, (long long)p.producer_executions);
    }
    loop = spmt::apply_profile(loop, prof);
  }

  std::optional<sched::Schedule> schedule;
  if (!remote.empty()) {
    // Delegate scheduling to a running tmsd; rebuild the schedule from
    // the response slots and fall through to the local render/simulate
    // pipeline. Deterministic schedulers make remote == local output.
    if (registers > 0) {
      std::fprintf(stderr, "--registers is not supported with --remote\n");
      return 2;
    }
    serve::Client client;
    if (const auto err = client.connect_unix(remote)) {
      std::fprintf(stderr, "tmsc: %s\n", err->c_str());
      return 1;
    }
    serve::Request req;
    req.scheduler = scheduler;
    req.ncore = ncore;
    req.deadline_ms = deadline_ms;
    req.policy = policy;
    req.policy_stride = policy_stride;
    req.policy_block = policy_block;
    req.bus_bytes_per_transfer = bus_bytes;
    req.bus_bytes_per_cycle = bus_bandwidth;
    req.loop = loop;
    auto result = client.compile(req);
    if (const auto* err = std::get_if<std::string>(&result)) {
      std::fprintf(stderr, "tmsc: %s\n", err->c_str());
      return 1;
    }
    const serve::Response& resp = std::get<serve::Response>(result);
    if (!resp.ok) {
      std::fprintf(stderr, "tmsc: server error [%s]: %s (request_id %s)\n",
                   std::string(serve::to_string(resp.code)).c_str(), resp.message.c_str(),
                   resp.request_id.c_str());
      return 1;
    }
    if (resp.slots.size() != static_cast<std::size_t>(loop.num_instrs())) {
      std::fprintf(stderr, "tmsc: response has %zu slots for a %d-instruction loop\n",
                   resp.slots.size(), loop.num_instrs());
      return 1;
    }
    sched::Schedule s(loop, mach, resp.ii);
    for (int v = 0; v < loop.num_instrs(); ++v) {
      s.set_slot(v, resp.slots[static_cast<std::size_t>(v)]);
    }
    if (const auto verr = s.validate()) {
      std::fprintf(stderr, "tmsc: response schedule is invalid: %s\n", verr->c_str());
      return 1;
    }
    std::printf("remote: %s ii=%d mii=%d cache_hit=%d server_ms=%.2f request_id=%s\n",
                resp.scheduler.c_str(), resp.ii, resp.mii, resp.cache_hit ? 1 : 0,
                resp.server_ms, resp.request_id.c_str());
    schedule.emplace(std::move(s));
  } else if (registers > 0) {
    if (scheduler == "tms") {
      if (auto r = sched::tms_schedule_reglimited(loop, mach, cfg, registers)) {
        std::printf("register budget %d: pressure %d after %d II bump(s)\n", registers,
                    r->pressure, r->retries);
        schedule.emplace(std::move(r->schedule));
      }
    } else if (scheduler == "sms") {
      if (auto r = sched::sms_schedule_reglimited(loop, mach, registers)) {
        std::printf("register budget %d: pressure %d after %d II bump(s)\n", registers,
                    r->pressure, r->retries);
        schedule.emplace(std::move(r->schedule));
      }
    } else {
      std::fprintf(stderr, "--registers supports sms and tms only\n");
      return 2;
    }
  } else if (scheduler == "sms") {
    if (auto r = sched::sms_schedule(loop, mach)) schedule.emplace(std::move(r->schedule));
  } else if (scheduler == "ims") {
    if (auto r = sched::ims_schedule(loop, mach)) schedule.emplace(std::move(r->schedule));
  } else if (scheduler == "tms") {
    if (auto r = sched::tms_schedule(loop, mach, cfg)) {
      std::printf("TMS thresholds: C_delay<=%d P_max=%.2f (F=%.2f, %d pairs tried)\n",
                  r->c_delay_threshold, r->p_max, r->f_value, r->pairs_tried);
      schedule.emplace(std::move(r->schedule));
    }
  } else {
    return usage(argv[0]);
  }
  if (!schedule.has_value()) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }

  if (metrics) {
    const sched::LoopMetrics m = sched::measure(*schedule, cfg);
    std::printf("metrics: inst=%d sccs=%d mii=%d ldp=%d ii=%d maxlive=%d c_delay=%d stages=%d "
                "copies=%d pairs=%d P_M=%.4f\n",
                m.num_instrs, m.num_sccs, m.mii, m.ldp, m.ii, m.max_live, m.c_delay, m.stages,
                m.copies, m.comm_pairs, m.misspec_probability);
  }

  if (render == "flat" || render == "all") {
    std::printf("%s", viz::render_flat_schedule(*schedule).c_str());
  }
  if (render == "kernel" || render == "all") {
    std::printf("%s", viz::render_kernel(*schedule, cfg).c_str());
  }
  if (render == "exec" || render == "all") {
    std::printf("%s", viz::render_execution(*schedule, cfg).c_str());
  }
  if (render == "dot" || render == "all") {
    std::printf("%s", viz::render_ddg_dot(loop).c_str());
  }

  if (simulate > 0) {
    const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
    const auto kp = codegen::lower_kernel(*schedule, cfg);
    spmt::SpmtOptions opts;
    opts.iterations = simulate;
    opts.keep_memory = false;
    const auto sim = spmt::run_spmt(loop, kp, cfg, streams, opts);
    std::printf("simulated %lld iterations on %d cores: %lld cycles (%.2f/iter), "
                "sync stalls %lld, SEND/RECV pairs %lld, misspeculations %lld (%.3f%%)\n",
                (long long)simulate, cfg.ncore, (long long)sim.stats.total_cycles,
                static_cast<double>(sim.stats.total_cycles) / static_cast<double>(simulate),
                (long long)sim.stats.sync_stall_cycles, (long long)sim.stats.send_recv_pairs,
                (long long)sim.stats.misspeculations, 100.0 * sim.stats.misspec_frequency());
    if (cfg.policy != machine::AllocPolicy::kModulo || cfg.bus_enabled()) {
      std::printf("policy %s: bus transfers %lld, bus cycles %lld (%d cycles/transfer)\n",
                  std::string(policy::to_string(cfg.policy)).c_str(),
                  (long long)sim.stats.bus_transfers, (long long)sim.stats.bus_cycles,
                  cfg.bus_transfer_cycles());
    }
  }
  if (baseline > 0) {
    const spmt::AddressStreams streams = spmt::default_streams(loop, 42);
    const auto single = spmt::run_single_threaded(loop, mach, cfg, streams, baseline);
    std::printf("single-threaded baseline: %lld cycles for %lld iterations (%.2f/iter, ipc "
                "%.2f)\n",
                (long long)single.total_cycles, (long long)baseline,
                static_cast<double>(single.total_cycles) / static_cast<double>(baseline),
                single.ipc());
  }
  return 0;
}
