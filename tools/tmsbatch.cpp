// tmsbatch — parallel batch compiler for loop workloads.
//
// Compiles (schedule + validate + optionally simulate) a whole workload
// suite, a directory of .loop files, or explicit .loop files on a
// work-stealing JobPool, consulting a content-addressed schedule cache so
// repeated sweeps hit instead of recompute. The canonical JSON report
// (--stable-json) is byte-identical across --jobs values and cache
// states; see docs/DRIVER.md.
//
// Usage:
//   tmsbatch [loop files...] [options]
//     --suite kernels|doacross|spec|all  add a built-in workload suite
//                                        (default when no input is given:
//                                         kernels + doacross)
//     --dir DIR                add every *.loop file under DIR (sorted)
//     --schedulers LIST        comma list of sms,ims,tms  (default tms)
//     --jobs N                 worker threads             (default ncpu)
//     --cache-dir DIR          persistent schedule cache on disk
//     --cache-capacity N       in-memory cache entries    (default 65536)
//     --cache-disk-max-bytes N bound the on-disk cache; oldest files are
//                              evicted past the bound     (default 0 = unbounded)
//     --no-cache               disable the schedule cache entirely
//     --json PATH              write the JSON report to PATH
//     --stable-json            omit volatile fields (timings, cache info)
//                              from the JSON report
//     --simulate N             simulate N iterations per loop on the SpMT
//                              machine                    (default 0 = off)
//     --oracle N               run the differential oracle with N
//                              iterations per loop        (default off)
//     --no-validate            skip the independent schedule validator
//     --ncore N                cores of the SpMT machine  (default 4)
//     --policy P               core-allocation policy: modulo (default),
//                              round_robin_stride, locality, dep_distance
//     --policy-stride N        stride for round_robin_stride (default 1)
//     --policy-block N         block size for locality        (default 1)
//     --bus-bytes N            shared-bus bytes per register transfer
//                              (default 0 = contention term off)
//     --bus-bandwidth N        shared-bus bytes per cycle     (default 16)
//     --seed S                 batch seed for simulation/oracle streams
//     --quiet                  print only the summary, not the per-job table
//     --trace PATH             record a structured trace of the run and
//                              write it to PATH: Chrome trace_event JSON
//                              (load in Perfetto / chrome://tracing), or
//                              the canonical timestamp-free form when
//                              --stable-json is also given
//     --trace-buf N            trace buffer capacity in events
//                                                         (default 1048576)
//     --explain LOOP           instead of running the batch, schedule the
//                              named loop with TMS under tracing and print
//                              a narrative of the relaxation ladder
//
// Exit status: 0 when every job is ok, 1 when any job failed, 2 on usage
// errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "driver/batch.hpp"
#include "driver/job_pool.hpp"
#include "driver/schedule_cache.hpp"
#include "ir/textio.hpp"
#include "obs/explain.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "sched/mii.hpp"
#include "sched/tms.hpp"
#include "workloads/builder.hpp"
#include "workloads/doacross.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_suite.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [loop files...] [--suite kernels|doacross|spec|all] [--dir DIR]\n"
               "          [--schedulers sms,ims,tms] [--jobs N] [--cache-dir DIR]\n"
               "          [--cache-capacity N] [--cache-disk-max-bytes N] [--no-cache]\n"
               "          [--json PATH] [--stable-json]\n"
               "          [--simulate N] [--oracle N] [--no-validate] [--ncore N] [--seed S]\n"
               "          [--policy modulo|round_robin_stride|locality|dep_distance]\n"
               "          [--policy-stride N] [--policy-block N] [--bus-bytes N] [--bus-bandwidth N]\n"
               "          [--quiet] [--trace PATH] [--trace-buf N] [--explain LOOP]\n",
               argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = (comma == std::string::npos) ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct NamedLoop {
  std::string name;
  ir::Loop loop{"unnamed"};
};

bool load_loop_file(const std::string& path, std::vector<NamedLoop>& out) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  auto parsed = ir::parse_loop(file);
  if (const auto* err = std::get_if<ir::ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), err->line, err->message.c_str());
    return false;
  }
  NamedLoop nl;
  nl.loop = std::get<ir::Loop>(std::move(parsed));
  nl.name = std::filesystem::path(path).stem().string();
  out.push_back(std::move(nl));
  return true;
}

void add_kernels(std::vector<NamedLoop>& out) {
  for (workloads::Kernel& k : workloads::classic_kernels()) {
    out.push_back({k.loop.name(), std::move(k.loop)});
  }
}

void add_doacross(std::vector<NamedLoop>& out) {
  for (workloads::SelectedLoop& sel : workloads::doacross_selected_loops()) {
    out.push_back({sel.benchmark + "/" + sel.loop.name(), std::move(sel.loop)});
  }
}

void add_spec_suite(std::vector<NamedLoop>& out, int jobs) {
  // Shape derivation is serial; the 778 build_loop calls parallelise with
  // one private RNG per job (the shape's forked seed).
  struct Item {
    std::string bench;
    workloads::ShapedLoop shaped;
  };
  std::vector<Item> items;
  for (const workloads::BenchmarkSpec& spec : workloads::spec_fp2000_suite()) {
    for (workloads::ShapedLoop& s : workloads::benchmark_shapes(spec)) {
      items.push_back({spec.name, std::move(s)});
    }
  }
  const std::size_t base = out.size();
  out.resize(base + items.size());
  driver::JobPool pool(jobs);
  pool.run(items.size(), [&](std::size_t i) {
    obs::ScopedContext ctx(obs::kCtxSuiteGen, static_cast<std::int32_t>(i));
    ir::Loop loop = workloads::build_loop(items[i].shaped.shape);
    loop.set_coverage(items[i].shaped.coverage);
    out[base + i] = {items[i].bench + "/" + loop.name(), std::move(loop)};
  });
}

/// --explain: schedule one loop with TMS under tracing, render the
/// relaxation-ladder narrative from the captured events.
int run_explain(const NamedLoop& nl, const machine::MachineModel& mach,
                const machine::SpmtConfig& cfg, std::size_t trace_buf) {
  if (!obs::trace_compiled()) {
    std::fprintf(stderr, "--explain needs tracing, but this build has TMS_TRACE=0\n");
    return 2;
  }
  obs::trace_enable(trace_buf);
  std::optional<sched::TmsResult> result;
  {
    obs::ScopedContext ctx(obs::kCtxExplain, 0);
    result = sched::tms_schedule(nl.loop, mach, cfg);
  }

  std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const obs::TraceEvent& e) {
                                return e.ctx_phase != obs::kCtxExplain;
                              }),
               events.end());

  obs::ExplainInput in;
  in.loop_name = nl.name;
  in.scheduler = "tms";
  for (ir::NodeId v = 0; v < nl.loop.num_instrs(); ++v) {
    in.node_names.push_back(nl.loop.instr(v).name);
  }
  in.mii = result.has_value() ? result->mii : sched::min_ii(nl.loop, mach);
  if (result.has_value()) {
    in.f_breakdown = cost::f_breakdown(result->schedule.ii(), result->schedule.c_delay(cfg),
                                       result->misspec_probability, cfg);
  }
  in.events = std::move(events);
  std::printf("%s", obs::render_tms_explain(in).c_str());
  if (obs::trace_dropped() > 0) {
    std::fprintf(stderr, "warning: %llu trace event(s) dropped; re-run with a larger --trace-buf\n",
                 static_cast<unsigned long long>(obs::trace_dropped()));
  }
  obs::trace_disable();
  return result.has_value() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> suites;
  std::vector<std::string> dirs;
  std::vector<std::string> schedulers = {"tms"};
  driver::BatchOptions opts;
  std::string cache_dir;
  std::size_t cache_capacity = 1 << 16;
  std::uint64_t cache_disk_max_bytes = 0;
  bool use_cache = true;
  std::string json_path;
  bool stable_json = false;
  int ncore = 4;
  machine::AllocPolicy policy = machine::AllocPolicy::kModulo;
  int policy_stride = 1;
  int policy_block = 1;
  int bus_bytes = 0;
  int bus_bandwidth = 16;
  bool quiet = false;
  std::string trace_path;
  std::size_t trace_buf = 1u << 20;
  std::string explain_loop;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--suite") {
      suites.push_back(next("--suite"));
    } else if (a == "--dir") {
      dirs.push_back(next("--dir"));
    } else if (a == "--schedulers") {
      schedulers = split_csv(next("--schedulers"));
    } else if (a == "--jobs") {
      opts.jobs = std::atoi(next("--jobs"));
    } else if (a == "--cache-dir") {
      cache_dir = next("--cache-dir");
    } else if (a == "--cache-capacity") {
      cache_capacity = std::strtoull(next("--cache-capacity"), nullptr, 10);
    } else if (a == "--cache-disk-max-bytes") {
      cache_disk_max_bytes = std::strtoull(next("--cache-disk-max-bytes"), nullptr, 10);
    } else if (a == "--no-cache") {
      use_cache = false;
    } else if (a == "--json") {
      json_path = next("--json");
    } else if (a == "--stable-json") {
      stable_json = true;
    } else if (a == "--simulate") {
      opts.simulate_iterations = std::atoll(next("--simulate"));
    } else if (a == "--oracle") {
      opts.run_oracle = true;
      opts.oracle_iterations = std::atoll(next("--oracle"));
    } else if (a == "--no-validate") {
      opts.validate = false;
    } else if (a == "--ncore") {
      ncore = std::atoi(next("--ncore"));
    } else if (a == "--policy") {
      const char* name = next("--policy");
      if (!policy::policy_from_string(name, policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n", name);
        return 2;
      }
    } else if (a == "--policy-stride") {
      policy_stride = std::atoi(next("--policy-stride"));
    } else if (a == "--policy-block") {
      policy_block = std::atoi(next("--policy-block"));
    } else if (a == "--bus-bytes") {
      bus_bytes = std::atoi(next("--bus-bytes"));
    } else if (a == "--bus-bandwidth") {
      bus_bandwidth = std::atoi(next("--bus-bandwidth"));
    } else if (a == "--seed") {
      opts.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--trace") {
      trace_path = next("--trace");
    } else if (a == "--trace-buf") {
      trace_buf = std::strtoull(next("--trace-buf"), nullptr, 10);
    } else if (a == "--explain") {
      explain_loop = next("--explain");
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }
  for (const std::string& s : schedulers) {
    if (s != "sms" && s != "ims" && s != "tms") {
      std::fprintf(stderr, "unknown scheduler '%s'\n", s.c_str());
      return 2;
    }
  }

  // Arm the tracer before any loops are built so suite generation is
  // captured too (--explain arms its own buffer later instead).
  const bool tracing = !trace_path.empty() && explain_loop.empty();
  if (tracing) {
    if (!obs::trace_compiled()) {
      std::fprintf(stderr, "--trace needs tracing, but this build has TMS_TRACE=0\n");
      return 2;
    }
    obs::trace_enable(trace_buf);
  }

  std::vector<NamedLoop> loops;
  for (const std::string& f : files) {
    if (!load_loop_file(f, loops)) return 1;
  }
  for (const std::string& d : dirs) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(d, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".loop") {
        paths.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s\n", d.c_str());
      return 1;
    }
    std::sort(paths.begin(), paths.end());  // deterministic job order
    for (const std::string& p : paths) {
      if (!load_loop_file(p, loops)) return 1;
    }
  }
  if (files.empty() && dirs.empty() && suites.empty()) {
    suites = {"kernels", "doacross"};  // the curated default workload
  }
  for (const std::string& s : suites) {
    if (s == "kernels") {
      add_kernels(loops);
    } else if (s == "doacross") {
      add_doacross(loops);
    } else if (s == "spec") {
      add_spec_suite(loops, opts.jobs);
    } else if (s == "all") {
      add_kernels(loops);
      add_doacross(loops);
      add_spec_suite(loops, opts.jobs);
    } else {
      std::fprintf(stderr, "unknown suite '%s'\n", s.c_str());
      return 2;
    }
  }
  if (loops.empty()) {
    std::fprintf(stderr, "no loops to compile\n");
    return 2;
  }

  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.ncore = ncore;
  cfg.policy = policy;
  cfg.policy_stride = policy_stride;
  cfg.policy_block = policy_block;
  cfg.bus_bytes_per_transfer = bus_bytes;
  cfg.bus_bytes_per_cycle = bus_bandwidth;

  if (!explain_loop.empty()) {
    for (const NamedLoop& nl : loops) {
      if (nl.name == explain_loop || nl.loop.name() == explain_loop) {
        return run_explain(nl, mach, cfg, trace_buf);
      }
    }
    std::fprintf(stderr, "--explain: no loaded loop is named '%s'\n", explain_loop.c_str());
    return 2;
  }

  std::vector<driver::BatchJob> jobs;
  jobs.reserve(loops.size() * schedulers.size());
  for (const NamedLoop& nl : loops) {
    for (const std::string& scheduler : schedulers) {
      jobs.push_back({nl.name, nl.loop, cfg, scheduler});
    }
  }

  std::optional<driver::ScheduleCache> cache;
  if (use_cache) cache.emplace(cache_capacity, cache_dir, cache_disk_max_bytes);

  const driver::BatchReport report =
      driver::run_batch(jobs, mach, opts, cache ? &*cache : nullptr);

  if (!quiet) {
    std::printf("%s", report.to_text().c_str());
  } else {
    std::printf("%zu job(s): %d ok, %d failed; %d thread(s), %.1f ms, cache hit rate %.1f%%\n",
                report.results.size(), report.count(driver::JobStatus::kOk),
                static_cast<int>(report.results.size()) - report.count(driver::JobStatus::kOk),
                report.threads, report.wall_ms, 100.0 * report.cache.hit_rate());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.to_json(/*include_volatile=*/!stable_json) << '\n';
  }

  if (tracing) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    // Canonical (timestamp-free, thread-count-invariant) with
    // --stable-json; Chrome trace_event JSON for Perfetto otherwise.
    out << (stable_json ? obs::trace_canonical_json() : obs::trace_chrome_json()) << '\n';
    if (obs::trace_dropped() > 0) {
      std::fprintf(stderr,
                   "warning: %llu trace event(s) dropped%s; re-run with a larger --trace-buf\n",
                   static_cast<unsigned long long>(obs::trace_dropped()),
                   stable_json ? " (canonical trace is not comparable across runs)" : "");
    }
    obs::trace_disable();
  }

  return report.count(driver::JobStatus::kOk) == static_cast<int>(report.results.size()) ? 0 : 1;
}
