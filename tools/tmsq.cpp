// tmsq — one-shot client for the tmsd compile service.
//
// Sends a single loop to a running tmsd and prints the schedule (the
// same flat rendering as `tmsc --render flat`, so outputs diff cleanly),
// or probes liveness with --ping. tmsc --remote delegates here in
// spirit: both use serve::Client and print through viz::render.
//
// Usage:
//   tmsq --socket PATH [<loop-file>] [options]
//   tmsq --tcp HOST:PORT [<loop-file>] [options]
//   tmsq --router PATH [<loop-file>] [options]
//     --router PATH            Unix socket of a tmsrouter front-end. Same
//                              wire protocol; tmsq additionally mints a
//                              request_id when none was given and verifies
//                              the echo survived the extra hop (exit-code
//                              contract unchanged)
//     --scheduler sms|ims|tms  (default tms)
//     --ncore N                (default 4)
//     --deadline-ms N          per-request deadline (0 = none)
//     --timeout-ms N           socket send/recv timeout (default 30000)
//     --request-id ID          end-to-end request id ([A-Za-z0-9._:-],
//                              <= 64 chars); echoed by the server and
//                              attached to its trace span
//     --trace-out FILE         mint a trace id, send it with the request,
//                              and write the server-echoed span summary
//                              (tmsq-trace-v1 JSON) to FILE. The ids tie
//                              this invocation to the server's own trace
//                              dump (docs/OBSERVABILITY.md). Exit codes
//                              are unchanged
//     --ping                   liveness probe instead of a request
//     --quiet                  suppress the "remote:" summary line
//
// Exit status (the contract scripts dispatch on — see docs/DRIVER.md):
//   0  schedule received (or pong)
//   1  transport failure, or a server error not listed below
//   2  usage error
//   3  server answered `overload` (retry_after_ms printed)
//   4  server answered `deadline`
//   5  server answered `parse` or `bad-request` (the request itself is
//      broken; retrying it verbatim cannot succeed)
// Every structured error prints its full payload: code, message, the
// echoed request_id, and retry_after_ms when the server set one. Retry
// policy still belongs to the caller (loadgen implements one).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "ir/textio.hpp"
#include "machine/machine.hpp"
#include "obs/trace.hpp"
#include "sched/schedule.hpp"
#include "serve/client.hpp"
#include "support/json.hpp"
#include "viz/render.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp HOST:PORT | --router PATH) [<loop-file>]\n"
               "          [--scheduler sms|ims|tms] [--ncore N] [--deadline-ms N]\n"
               "          [--timeout-ms N] [--request-id ID] [--trace-out FILE]\n"
               "          [--ping] [--quiet]\n"
               "exit: 0 ok, 1 transport/other, 2 usage, 3 overload, 4 deadline,\n"
               "      5 parse/bad-request\n",
               argv0);
  return 2;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Best-effort: a failure to write the summary warns but never changes
/// the exit code (the contract scripts dispatch on).
void write_trace_summary(const std::string& path, const tms::serve::Request& req,
                         const tms::serve::Response& resp) {
  tms::support::JsonWriter w;
  w.begin_object();
  w.member("schema", "tmsq-trace-v1");
  w.member("trace_id", hex16(req.trace_id));
  w.member("span_id", hex16(resp.span_id));
  w.member("request_id", resp.request_id);
  w.member("ok", resp.ok);
  if (!resp.ok) w.member("code", std::string(tms::serve::to_string(resp.code)));
  w.member("echoed", resp.trace_id == req.trace_id);
  w.member("t_queue_us", resp.t_queue_us);
  w.member("t_schedule_us", resp.t_schedule_us);
  w.member("t_validate_us", resp.t_validate_us);
  w.member("t_total_us", resp.t_total_us);
  w.member("server_ms", resp.server_ms);
  w.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tmsq: cannot write --trace-out %s\n", path.c_str());
    return;
  }
  const std::string json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp;
  std::string loop_file;
  serve::Request req;
  int timeout_ms = 30000;
  bool ping = false;
  bool quiet = false;
  bool router_mode = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--router") {
      socket_path = next("--router");
      router_mode = true;
    } else if (a == "--tcp") {
      tcp = next("--tcp");
    } else if (a == "--scheduler") {
      req.scheduler = next("--scheduler");
    } else if (a == "--ncore") {
      req.ncore = std::atoi(next("--ncore"));
    } else if (a == "--deadline-ms") {
      req.deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (a == "--timeout-ms") {
      timeout_ms = std::atoi(next("--timeout-ms"));
    } else if (a == "--request-id") {
      req.request_id = next("--request-id");
      if (!serve::valid_request_id(req.request_id)) {
        std::fprintf(stderr, "bad --request-id (1..64 chars of [A-Za-z0-9._:-])\n");
        return 2;
      }
    } else if (a == "--trace-out") {
      trace_out = next("--trace-out");
    } else if (a == "--ping") {
      ping = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else if (loop_file.empty()) {
      loop_file = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() == tcp.empty()) {
    std::fprintf(stderr, "exactly one of --socket / --tcp / --router is required\n");
    return usage(argv[0]);
  }
  // Through a router the request crosses two hops; a minted id makes the
  // echo check below meaningful even when the caller didn't pass one.
  if (router_mode && req.request_id.empty()) {
    req.request_id = "tmsq-" + std::to_string(static_cast<long long>(::getpid()));
  }
  if (!ping && loop_file.empty()) {
    std::fprintf(stderr, "a loop file is required unless --ping\n");
    return usage(argv[0]);
  }

  serve::Client client;
  std::optional<std::string> err;
  if (!socket_path.empty()) {
    err = client.connect_unix(socket_path, timeout_ms);
  } else {
    const std::size_t colon = tcp.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--tcp expects HOST:PORT\n");
      return 2;
    }
    err = client.connect_tcp(tcp.substr(0, colon), std::atoi(tcp.c_str() + colon + 1),
                             timeout_ms);
  }
  if (err.has_value()) {
    std::fprintf(stderr, "tmsq: %s\n", err->c_str());
    return 1;
  }

  if (ping) {
    if (const auto perr = client.ping()) {
      std::fprintf(stderr, "tmsq: ping failed: %s\n", perr->c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  std::ifstream file(loop_file);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", loop_file.c_str());
    return 1;
  }
  auto parsed = ir::parse_loop(file);
  if (const auto* perr = std::get_if<ir::ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", loop_file.c_str(), perr->line, perr->message.c_str());
    return 1;
  }
  req.loop = std::get<ir::Loop>(std::move(parsed));
  if (!trace_out.empty()) req.trace_id = obs::mint_id();

  auto result = client.compile(req);
  if (const auto* terr = std::get_if<std::string>(&result)) {
    std::fprintf(stderr, "tmsq: %s\n", terr->c_str());
    return 1;
  }
  const serve::Response& resp = std::get<serve::Response>(result);
  if (!trace_out.empty()) write_trace_summary(trace_out, req, resp);
  if (router_mode && resp.request_id != req.request_id) {
    std::fprintf(stderr, "tmsq: request_id echo lost across the router hop: sent %s, got %s\n",
                 req.request_id.c_str(),
                 resp.request_id.empty() ? "(empty)" : resp.request_id.c_str());
    return 1;
  }
  if (!resp.ok) {
    // Full structured payload: code, message, echoed request_id, and the
    // backoff hint whenever the server set one (not only for overload).
    std::fprintf(stderr, "tmsq: server error [%s]: %s\n",
                 std::string(serve::to_string(resp.code)).c_str(), resp.message.c_str());
    if (!resp.request_id.empty()) {
      std::fprintf(stderr, "tmsq: request_id %s\n", resp.request_id.c_str());
    }
    if (resp.retry_after_ms > 0) {
      std::fprintf(stderr, "tmsq: server suggests retrying after %lld ms\n",
                   (long long)resp.retry_after_ms);
    }
    switch (resp.code) {
      case serve::ErrorCode::kOverload:
        return 3;
      case serve::ErrorCode::kDeadline:
        return 4;
      case serve::ErrorCode::kParse:
      case serve::ErrorCode::kBadRequest:
        return 5;
      default:
        return 1;
    }
  }

  // Rebuild the schedule locally from the response slots — the response
  // carries exactly what a cache entry does, so the rendering below is
  // byte-identical to `tmsc --render flat` on the same loop.
  machine::MachineModel mach;
  if (resp.slots.size() != static_cast<std::size_t>(req.loop.num_instrs())) {
    std::fprintf(stderr, "tmsq: response has %zu slots for a %d-instruction loop\n",
                 resp.slots.size(), req.loop.num_instrs());
    return 1;
  }
  sched::Schedule schedule(req.loop, mach, resp.ii);
  for (int v = 0; v < req.loop.num_instrs(); ++v) {
    schedule.set_slot(v, resp.slots[static_cast<std::size_t>(v)]);
  }
  if (const auto verr = schedule.validate()) {
    std::fprintf(stderr, "tmsq: response schedule is invalid: %s\n", verr->c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("remote: %s ii=%d mii=%d cache_hit=%d server_ms=%.2f request_id=%s\n",
                resp.scheduler.c_str(), resp.ii, resp.mii, resp.cache_hit ? 1 : 0,
                resp.server_ms, resp.request_id.c_str());
  }
  std::printf("%s", viz::render_flat_schedule(schedule).c_str());
  return 0;
}
