// mdcheck — offline markdown link checker for the repo's documentation.
//
// Walks the given markdown files (or directories, scanned for *.md) and
// verifies every inline link [text](target):
//   - relative file targets must exist on disk (resolved against the
//     linking file's directory);
//   - #fragment targets — same-file or file.md#section — must match a
//     heading in the target file, using GitHub's anchor slugification
//     (lowercase, punctuation stripped, spaces to hyphens, -N suffixes
//     for duplicates);
//   - external targets (http://, https://, mailto:) are skipped: CI has
//     no network and the docs must check clean offline.
// Links inside fenced code blocks and inline code spans are ignored.
//
// Exit status: 0 when every link resolves, 1 with one line per broken
// link otherwise. Run by the md_links ctest over docs/, README.md and
// CHANGES.md.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  std::string target;
  int line = 0;
};

/// GitHub-style heading anchor: lowercase, keep [a-z0-9 _-], then
/// spaces -> hyphens. Inline-code backticks and other punctuation drop.
std::string slugify(const std::string& heading) {
  std::string s;
  for (const char c : heading) {
    const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (std::isalnum(static_cast<unsigned char>(lc)) || lc == '_' || lc == '-' || lc == ' ') {
      s.push_back(lc == ' ' ? '-' : lc);
    }
  }
  return s;
}

std::string strip(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

/// Replaces inline code spans (`...`) with spaces so their content is
/// never mistaken for link syntax.
std::string blank_code_spans(std::string line) {
  bool in_code = false;
  for (char& c : line) {
    if (c == '`') {
      in_code = !in_code;
      c = ' ';
    } else if (in_code) {
      c = ' ';
    }
  }
  return line;
}

struct Document {
  std::vector<Link> links;
  std::set<std::string> anchors;
};

Document parse(const fs::path& path) {
  Document doc;
  std::ifstream in(path);
  std::string raw;
  std::map<std::string, int> slug_count;
  bool in_fence = false;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string trimmed = strip(raw);
    if (trimmed.rfind("```", 0) == 0 || trimmed.rfind("~~~", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;

    if (!trimmed.empty() && trimmed[0] == '#') {
      std::size_t level = trimmed.find_first_not_of('#');
      if (level != std::string::npos && level <= 6 && trimmed[level] == ' ') {
        const std::string slug = slugify(strip(trimmed.substr(level + 1)));
        const int n = slug_count[slug]++;
        doc.anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
      }
    }

    const std::string line = blank_code_spans(raw);
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      if (line[i] != ']' || line[i + 1] != '(') continue;
      const std::size_t open = i + 1;
      int depth = 1;
      std::size_t j = open + 1;
      for (; j < line.size() && depth > 0; ++j) {
        if (line[j] == '(') ++depth;
        if (line[j] == ')') --depth;
      }
      if (depth != 0) continue;  // unbalanced: prose, not a link
      std::string target = strip(line.substr(open + 1, j - open - 2));
      // "[text](url "title")" — drop the optional title.
      const std::size_t sp = target.find(' ');
      if (sp != std::string::npos) {
        if (target.find('"', sp) == std::string::npos) continue;  // prose
        target = strip(target.substr(0, sp));
      }
      if (!target.empty()) doc.links.push_back({target, lineno});
    }
  }
  return doc;
}

bool is_external(const std::string& t) {
  return t.find("://") != std::string::npos || t.rfind("mailto:", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const fs::directory_entry& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && e.path().extension() == ".md") files.push_back(e.path());
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "mdcheck: no such file or directory: %s\n", argv[i]);
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: mdcheck FILE_OR_DIR...\n");
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::map<fs::path, Document> docs;
  for (const fs::path& f : files) docs[fs::weakly_canonical(f)] = parse(f);

  int broken = 0;
  int checked = 0;
  for (const fs::path& f : files) {
    const fs::path self = fs::weakly_canonical(f);
    for (const Link& l : docs[self].links) {
      if (is_external(l.target)) continue;
      ++checked;
      std::string file_part = l.target;
      std::string frag;
      const std::size_t hash = l.target.find('#');
      if (hash != std::string::npos) {
        file_part = l.target.substr(0, hash);
        frag = l.target.substr(hash + 1);
      }
      fs::path target = file_part.empty() ? self : fs::weakly_canonical(f.parent_path() / file_part);
      if (!file_part.empty() && !fs::exists(target)) {
        std::fprintf(stderr, "%s:%d: broken link: %s (file not found)\n", f.string().c_str(),
                     l.line, l.target.c_str());
        ++broken;
        continue;
      }
      if (frag.empty()) continue;
      if (target.extension() != ".md") continue;  // cannot check anchors elsewhere
      auto it = docs.find(target);
      if (it == docs.end()) {
        it = docs.emplace(target, parse(target)).first;  // linked but not listed
      }
      if (it->second.anchors.count(frag) == 0) {
        std::fprintf(stderr, "%s:%d: broken anchor: %s (no heading '#%s' in %s)\n",
                     f.string().c_str(), l.line, l.target.c_str(), frag.c_str(),
                     target.filename().string().c_str());
        ++broken;
      }
    }
  }

  std::printf("mdcheck: %zu file(s), %d internal link(s) checked, %d broken\n", files.size(),
              checked, broken);
  return broken == 0 ? 0 : 1;
}
