// tmsrouter — sharded-cluster front-end for tmsd backends.
//
// Speaks the same TMSQ wire protocol as tmsd on its own socket and
// routes every COMPILE to one of N backends by the content-addressed
// schedule-cache key over a consistent-hash ring, so each loop lands on
// the shard whose cache is warm for it. A background prober drives the
// HEALTH verb to eject dead backends and readmit recovered ones;
// overloaded shards are retried then hedged to the next ring replica.
// Ring, ejection, hedging, and the peer-fill protocol are documented in
// docs/ROUTING.md.
//
// Usage:
//   tmsrouter --socket PATH --backend ADDR [--backend ADDR ...]
//     --socket PATH            Unix-domain socket to listen on (required)
//     --tcp-port N             also listen on 127.0.0.1:N (0 = ephemeral)
//     --backend ADDR           a tmsd to front: Unix socket path, or
//                              host:port for loopback TCP (repeatable,
//                              required at least once)
//     --vnodes N               ring points per backend    (default 64)
//     --retries N              same-backend resends on overload (default 2)
//     --hedges N               further ring replicas to try (default 2)
//     --retry-sleep-cap-ms N   clamp on honoured retry_after_ms hints
//                                                         (default 200)
//     --backend-timeout-ms N   per-forward send/recv timeout (default 30000)
//     --probe-interval-ms N    health-probe period (default 250; 0 = boot
//                              probe only)
//     --probe-timeout-ms N     per-probe timeout          (default 2000)
//     --eject-after N          consecutive failures before ejection
//                                                         (default 2)
//     --retry-after-ms N       backoff hint on router-minted overload
//                              answers                    (default 100)
//     --max-connections N      live client connections before turn-away
//                                                         (default 64)
//     --idle-timeout-ms N      close idle client connections (default
//                              30000, 0 = never)
//     --counters               print the counter table on exit
//     --metrics-dump PATH      write the router's own Prometheus text
//                              exposition to PATH on SIGUSR1 (and per
//                              --metrics-interval-ms)
//     --cluster-metrics-dump PATH
//                              write the merged cluster exposition to
//                              PATH on the same triggers: the router's
//                              registry plus every reachable backend's,
//                              one sample set per shard="<address>"
//                              label (the router is shard="router").
//                              Each dump fans STATS out to all backends
//     --metrics-interval-ms N  also dump every N ms (0 = signal-only)
//
// Lifecycle mirrors tmsd: SIGTERM/SIGINT stops accepting, answers
// in-flight requests, and exits 0; a second signal aborts (130);
// SIGUSR1 only dumps metrics. Readiness is the "tmsrouter: listening
// on ..." line. STATS answers a tmsrouter-stats-v1 snapshot (per-backend
// health and latency plus the counter registry); CLUSTER_STATS answers
// the merged cluster-stats-v1 aggregate, which is what `tmstop
// --cluster` renders (docs/ROUTING.md).
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "obs/counters.hpp"
#include "obs/prometheus.hpp"
#include "router/router.hpp"
#include "serve/server.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --backend ADDR [--backend ADDR ...]\n"
               "          [--tcp-port N] [--vnodes N] [--retries N] [--hedges N]\n"
               "          [--retry-sleep-cap-ms N] [--backend-timeout-ms N]\n"
               "          [--probe-interval-ms N] [--probe-timeout-ms N] [--eject-after N]\n"
               "          [--retry-after-ms N] [--max-connections N] [--idle-timeout-ms N]\n"
               "          [--counters] [--metrics-dump PATH] [--cluster-metrics-dump PATH]\n"
               "          [--metrics-interval-ms N]\n",
               argv0);
  return 2;
}

int g_signal_pipe[2] = {-1, -1};
volatile sig_atomic_t g_signal_count = 0;
volatile sig_atomic_t g_dump_requested = 0;

void on_signal(int) {
  g_signal_count = static_cast<sig_atomic_t>(g_signal_count + 1);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void on_sigusr1(int) {
  g_dump_requested = 1;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Lint + temp file + rename, shared by the single-process and merged
/// cluster expositions.
void write_exposition(const std::string& path, const std::string& text) {
  if (const auto err = obs::lint_prometheus_text(text)) {
    std::fprintf(stderr, "tmsrouter: metrics exposition failed its own lint: %s\n",
                 err->c_str());
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tmsrouter: cannot write %s: %s\n", tmp.c_str(), std::strerror(errno));
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "tmsrouter: rename %s: %s\n", path.c_str(), std::strerror(errno));
  }
}

void dump_metrics(const std::string& path) {
  write_exposition(path, obs::write_prometheus_text(obs::counters_snapshot()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  router::RouterOptions ropts;
  serve::ServerOptions server_opts;
  bool print_counters = false;
  std::string metrics_dump;
  std::string cluster_metrics_dump;
  std::int64_t metrics_interval_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--tcp-port") {
      tcp_port = std::atoi(next("--tcp-port"));
    } else if (a == "--backend") {
      ropts.backends.emplace_back(next("--backend"));
    } else if (a == "--vnodes") {
      ropts.vnodes = std::atoi(next("--vnodes"));
    } else if (a == "--retries") {
      ropts.retries = std::atoi(next("--retries"));
    } else if (a == "--hedges") {
      ropts.hedges = std::atoi(next("--hedges"));
    } else if (a == "--retry-sleep-cap-ms") {
      ropts.retry_sleep_cap_ms = std::atoll(next("--retry-sleep-cap-ms"));
    } else if (a == "--backend-timeout-ms") {
      ropts.backend_timeout_ms = std::atoi(next("--backend-timeout-ms"));
    } else if (a == "--probe-interval-ms") {
      ropts.probe_interval_ms = std::atoll(next("--probe-interval-ms"));
    } else if (a == "--probe-timeout-ms") {
      ropts.probe_timeout_ms = std::atoi(next("--probe-timeout-ms"));
    } else if (a == "--eject-after") {
      ropts.eject_after = std::atoi(next("--eject-after"));
    } else if (a == "--retry-after-ms") {
      ropts.retry_after_ms = std::atoll(next("--retry-after-ms"));
    } else if (a == "--max-connections") {
      server_opts.max_connections = std::atoi(next("--max-connections"));
    } else if (a == "--idle-timeout-ms") {
      server_opts.idle_timeout_ms = std::atoll(next("--idle-timeout-ms"));
    } else if (a == "--counters") {
      print_counters = true;
    } else if (a == "--metrics-dump") {
      metrics_dump = next("--metrics-dump");
    } else if (a == "--cluster-metrics-dump") {
      cluster_metrics_dump = next("--cluster-metrics-dump");
    } else if (a == "--metrics-interval-ms") {
      metrics_interval_ms = std::atoll(next("--metrics-interval-ms"));
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return usage(argv[0]);
  }
  if (ropts.backends.empty()) {
    std::fprintf(stderr, "at least one --backend is required\n");
    return usage(argv[0]);
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction sa_usr1 {};
  sa_usr1.sa_handler = on_sigusr1;
  ::sigemptyset(&sa_usr1.sa_mask);
  ::sigaction(SIGUSR1, &sa_usr1, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  machine::MachineModel mach;
  router::Router router(mach, ropts);
  if (const auto err = router.start()) {
    std::fprintf(stderr, "tmsrouter: %s\n", err->c_str());
    return 1;
  }

  server_opts.unix_path = socket_path;
  server_opts.tcp_port = tcp_port;
  serve::SocketServer server(router, server_opts);
  if (const auto err = server.start()) {
    std::fprintf(stderr, "tmsrouter: %s\n", err->c_str());
    return 1;
  }

  std::printf("tmsrouter: listening on %s", socket_path.c_str());
  if (server.tcp_port() >= 0) std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf(" fronting %zu backend(s), %zu healthy\n", ropts.backends.size(),
              router.healthy_count());
  std::fflush(stdout);

  const auto dump_all = [&]() {
    if (!metrics_dump.empty()) dump_metrics(metrics_dump);
    if (!cluster_metrics_dump.empty()) {
      write_exposition(cluster_metrics_dump, router.cluster_prometheus_text());
    }
  };
  const bool any_dump = !metrics_dump.empty() || !cluster_metrics_dump.empty();
  const int poll_timeout =
      any_dump && metrics_interval_ms > 0 ? static_cast<int>(metrics_interval_ms) : -1;
  for (;;) {
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int r = ::poll(&pfd, 1, poll_timeout);
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      dump_all();
      continue;
    }
    if (r > 0 && (pfd.revents & POLLIN) != 0) {
      char buf[16];
      [[maybe_unused]] const ssize_t n = ::read(g_signal_pipe[0], buf, sizeof buf);
      if (g_dump_requested != 0 && g_signal_count == 0) {
        g_dump_requested = 0;
        dump_all();
        continue;
      }
      break;
    }
    if (r < 0) break;
  }

  std::printf("tmsrouter: draining\n");
  std::fflush(stdout);

  // Same order as tmsd: refuse new work, flush the transport's
  // in-flight requests, then stop the prober.
  router.begin_drain();
  server.drain();
  if (g_signal_count > 1) {
    std::fprintf(stderr, "tmsrouter: second signal during drain, aborting\n");
    return 130;
  }
  router.stop();

  for (const auto& b : router.backends_snapshot()) {
    std::printf("tmsrouter: backend %s: %s, %llu forwarded, %llu transport error(s)\n",
                b.address.c_str(), b.healthy ? "healthy" : "ejected",
                (unsigned long long)b.forwarded, (unsigned long long)b.transport_errors);
  }
  if (print_counters) {
    std::printf("%s", obs::counters_to_text(obs::counters_snapshot()).c_str());
  }
  // Final router-only exposition; the cluster dump would need live
  // backends, which may already be gone at this point.
  if (!metrics_dump.empty()) dump_metrics(metrics_dump);
  std::printf("tmsrouter: drained, exiting\n");
  return 0;
}
