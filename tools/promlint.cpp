// promlint — lint a Prometheus text-exposition file.
//
// Runs the same linter tmsd applies to its own --metrics-dump output
// (obs::lint_prometheus_text: grouping, TYPE-before-samples, strictly
// increasing `le` labels *per labelset*, non-decreasing cumulative
// buckets, trailing +Inf, _count == +Inf, duplicate HELP/TYPE/series).
// Histogram checks key on the sample's labels minus `le`, so the merged
// per-shard exposition from `tmsrouter --cluster-metrics-dump` — one
// sample set per shard="<address>" under a single HELP/TYPE header —
// lints through the same rules as a single daemon's dump. CI points
// this at dumps from a live daemon and a live router-fronted cluster so
// the exposition contract is enforced end to end, not just in unit
// tests.
//
// Usage: promlint FILE     ("-" reads stdin)
// Exit status: 0 clean, 1 lint error (printed as FILE:line: message),
// 2 usage or unreadable input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/prometheus.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::string text;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "promlint: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }
  if (const auto err = tms::obs::lint_prometheus_text(text)) {
    std::fprintf(stderr, "%s:%s\n", path.c_str(), err->c_str());
    return 1;
  }
  return 0;
}
