// benchgate — produce and gate the committed perf trajectory.
//
//   benchgate run [--out FILE] [--pr N] [--baseline FILE] [--quick] [--jobs N]
//                 [--scenario NAME]
//       Runs the six canonical scenarios (bench/scenarios) and writes a
//       bench-trajectory-v1 document. With --baseline, that file's
//       scenarios are embedded as the "baseline" section, so a committed
//       BENCH_<pr>.json records both the pre-change measurement and the
//       claimed improvement in one artifact. --scenario restricts the run
//       to one scenario (repeatable) — for iterating locally; a committed
//       trajectory always carries all six.
//
//   benchgate compare BASELINE CURRENT
//       Diffs the gated metrics (scenarios.hpp trajectory_metrics) of two
//       trajectory files with per-metric tolerance bands; exit 1 on any
//       out-of-band regression. This is the CI gate.
//
//   benchgate show FILE
//       Renders a trajectory file (and its embedded baseline, if any) as
//       a table.
//
// See docs/BENCHMARKS.md for the schema and the commit policy.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "scenarios.hpp"
#include "support/json_parse.hpp"
#include "support/table.hpp"

using namespace tms;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: benchgate run [--out FILE] [--pr N] [--baseline FILE] [--quick] "
               "[--jobs N] [--scenario NAME]\n"
               "       benchgate compare BASELINE CURRENT\n"
               "       benchgate show FILE\n");
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parses `path` as a bench-trajectory-v1 file; prints an error and
/// returns empty scenarios on failure.
std::vector<bench::ScenarioResult> load_scenarios(const std::string& path) {
  const auto text = read_file(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "benchgate: cannot read %s\n", path.c_str());
    return {};
  }
  const auto parsed = support::parse_json(*text);
  if (const auto* err = std::get_if<std::string>(&parsed)) {
    std::fprintf(stderr, "benchgate: %s: %s\n", path.c_str(), err->c_str());
    return {};
  }
  auto scenarios = bench::scenarios_from_json(std::get<support::JsonValue>(parsed));
  if (scenarios.empty()) {
    std::fprintf(stderr, "benchgate: %s is not a bench-trajectory-v1 file\n", path.c_str());
  }
  return scenarios;
}

void print_scenarios(const char* title, const std::vector<bench::ScenarioResult>& scenarios) {
  std::printf("%s\n", title);
  support::TextTable t({"Scenario", "Metric", "Value"});
  for (const bench::ScenarioResult& s : scenarios) {
    for (const auto& [k, v] : s.values) {
      t.add_row({s.name, k, support::TextTable::num(v, 2)});
    }
  }
  std::printf("%s\n", t.render().c_str());
}

int cmd_run(int argc, char** argv) {
  bench::ScenarioOptions opts;
  std::string out_path;
  std::string baseline_path;
  std::vector<std::string> only;
  int pr = 0;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (std::strcmp(a, "--quick") == 0) {
      opts = bench::quick_options();
    } else if (std::strcmp(a, "--out") == 0) {
      if (const char* v = next()) out_path = v; else return usage();
    } else if (std::strcmp(a, "--baseline") == 0) {
      if (const char* v = next()) baseline_path = v; else return usage();
    } else if (std::strcmp(a, "--pr") == 0) {
      if (const char* v = next()) pr = std::atoi(v); else return usage();
    } else if (std::strcmp(a, "--jobs") == 0) {
      if (const char* v = next()) opts.jobs = std::atoi(v); else return usage();
    } else if (std::strcmp(a, "--scenario") == 0) {
      if (const char* v = next()) only.emplace_back(v); else return usage();
    } else {
      return usage();
    }
  }

  std::vector<bench::ScenarioResult> baseline;
  std::string baseline_label;
  if (!baseline_path.empty()) {
    baseline = load_scenarios(baseline_path);
    if (baseline.empty()) return 1;
    baseline_label = "pre-change measurement (" + baseline_path + ")";
  }

  std::vector<bench::ScenarioResult> scenarios;
  if (only.empty()) {
    scenarios = bench::run_all_scenarios(opts);
  } else {
    using Runner = bench::ScenarioResult (*)(const bench::ScenarioOptions&);
    const std::pair<const char*, Runner> runners[] = {
        {"sched_single", bench::run_sched_single},
        {"batch_throughput", bench::run_batch_throughput},
        {"serve_e2e", bench::run_serve_e2e},
        {"cluster_scaling", bench::run_cluster_scaling},
        {"sim_scaling", bench::run_sim_scaling},
        {"policy_compare", bench::run_policy_compare},
    };
    for (const std::string& name : only) {
      bool found = false;
      for (const auto& [rname, run] : runners) {
        if (name == rname) {
          scenarios.push_back(run(opts));
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "benchgate: unknown scenario %s\n", name.c_str());
        return usage();
      }
    }
  }
  print_scenarios("benchgate scenarios:", scenarios);

  const std::string json = bench::trajectory_json(scenarios, pr, baseline_label, baseline);
  if (out_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::ofstream out(out_path);
    if (!out || !(out << json)) {
      std::fprintf(stderr, "benchgate: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc != 4) return usage();
  const std::vector<bench::ScenarioResult> baseline = load_scenarios(argv[2]);
  const std::vector<bench::ScenarioResult> current = load_scenarios(argv[3]);
  if (baseline.empty() || current.empty()) return 1;

  const std::vector<bench::MetricDelta> deltas = bench::compare_trajectories(baseline, current);
  support::TextTable t({"Metric", "Baseline", "Current", "Worse by", "Band", "Verdict"});
  int regressions = 0;
  for (const bench::MetricDelta& d : deltas) {
    if (d.missing) {
      t.add_row({d.metric, "-", "-", "-", "-", "skipped"});
      continue;
    }
    if (d.regression) ++regressions;
    t.add_row({d.metric, support::TextTable::num(d.baseline, 2),
               support::TextTable::num(d.current, 2), support::TextTable::pct(d.worse_pct),
               "+" + support::TextTable::pct(d.tolerance_pct, 0),
               d.regression ? "REGRESSION" : "ok"});
  }
  std::printf("%s\n", t.render().c_str());
  if (regressions > 0) {
    std::fprintf(stderr, "benchgate: %d metric(s) regressed beyond the tolerance band\n",
                 regressions);
    return 1;
  }
  std::printf("benchgate: all gated metrics within tolerance\n");
  return 0;
}

int cmd_show(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string path = argv[2];
  const std::vector<bench::ScenarioResult> scenarios = load_scenarios(path);
  if (scenarios.empty()) return 1;
  print_scenarios(("trajectory " + path + ":").c_str(), scenarios);

  // The embedded baseline, when present, and the improvement it implies.
  const auto text = read_file(path);
  const auto parsed = support::parse_json(*text);
  const auto baseline =
      bench::scenarios_from_json(std::get<support::JsonValue>(parsed), /*from_baseline=*/true);
  if (!baseline.empty()) {
    print_scenarios("embedded baseline:", baseline);
    const auto deltas = bench::compare_trajectories(baseline, scenarios);
    support::TextTable t({"Metric", "Baseline", "Current", "Improvement"});
    for (const bench::MetricDelta& d : deltas) {
      if (d.missing) continue;
      t.add_row({d.metric, support::TextTable::num(d.baseline, 2),
                 support::TextTable::num(d.current, 2), support::TextTable::pct(-d.worse_pct)});
    }
    std::printf("vs embedded baseline (positive = better):\n%s\n", t.render().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
  if (std::strcmp(argv[1], "compare") == 0) return cmd_compare(argc, argv);
  if (std::strcmp(argv[1], "show") == 0) return cmd_show(argc, argv);
  return usage();
}
