// tmstop — curses-free live monitor for a running tmsd.
//
// Polls the STATS protocol verb (see docs/SERVING.md) on an interval
// and renders a compact dashboard to stdout: the HEALTH line, request /
// reject / error rates computed from consecutive snapshot deltas, cache
// hit %, and per-stage latency quantiles estimated from the
// serve.latency.* log2 histogram buckets. No terminal library: when
// stdout is a TTY each tick redraws from the home position with an ANSI
// clear; otherwise (piped, CI) ticks are plain appended blocks, one per
// poll, which is what tests/serve_smoke.sh greps.
//
// STATS answers even while the daemon is draining, so tmstop keeps
// rendering right up to the moment the socket closes.
//
// A daemon restart between polls makes every monotonic counter jump
// backwards; rates clamp to zero for that tick and the block carries a
// "[restart]" marker instead of nonsense negative (or huge) rates.
//
// Usage:
//   tmstop (--socket PATH | --tcp HOST:PORT) [options]
//     --interval-ms N   poll interval (default 1000)
//     --count N         exit 0 after N polls (0 = run until the server
//                       goes away; default 0)
//     --expect-traffic  exit 1 unless some pair of consecutive snapshots
//                       showed a positive request rate (used by the
//                       smoke test to prove live numbers, not zeros)
//     --cluster         poll CLUSTER_STATS instead of STATS: point at a
//                       tmsrouter and render the merged aggregate
//                       percentiles plus one line per shard (latency,
//                       health, ejection state). Works against a lone
//                       tmsd too (degenerate one-shard cluster)
//     --no-clear        never emit ANSI clear codes, even on a TTY
//
// Exit status: 0 on a clean finish (count reached, or the server closed
// after at least one successful poll when --count 0), 1 on transport or
// parse failures (or --expect-traffic unmet), 2 on usage errors.
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "support/json_parse.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp HOST:PORT)\n"
               "          [--interval-ms N] [--count N] [--expect-traffic] [--cluster]\n"
               "          [--no-clear]\n",
               argv0);
  return 2;
}

/// One parsed STATS snapshot: the handful of scalars tmstop renders,
/// plus the four stage histograms (24 log2-microsecond buckets each).
struct Snapshot {
  std::int64_t uptime_ms = 0;
  std::int64_t queue_depth = 0;
  std::int64_t in_flight = 0;
  bool draining = false;
  double requests = 0;
  double responses_ok = 0;
  double responses_error = 0;
  double overload = 0;
  double cache_hits = 0;
  double cache_misses = 0;
  std::array<std::vector<double>, 4> stages;  // queue_wait, schedule, validate, total
};

constexpr const char* kStageNames[4] = {"serve.latency.queue_wait", "serve.latency.schedule",
                                        "serve.latency.validate", "serve.latency.total"};
constexpr const char* kStageLabels[4] = {"queue_wait", "schedule", "validate", "total"};

double num_or_zero(const support::JsonValue* v) {
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

/// Fills the counter scalars and stage histograms from an
/// "observability"-shaped object (counters / time_histograms members) —
/// shared between the per-daemon STATS payload and the cluster
/// aggregate, which is written by the same JSON emitter.
std::optional<std::string> fill_from_observability(const support::JsonValue& obs,
                                                   Snapshot& out) {
  const auto* counters = obs.find("counters");
  if (counters == nullptr || !counters->is_object()) return std::string("missing counters");
  out.requests = num_or_zero(counters->find("serve.requests"));
  out.responses_ok = num_or_zero(counters->find("serve.responses_ok"));
  out.responses_error = num_or_zero(counters->find("serve.responses_error"));
  out.overload = num_or_zero(counters->find("serve.rejected_overload"));
  out.cache_hits = num_or_zero(counters->find("driver.cache_hits"));
  out.cache_misses = num_or_zero(counters->find("driver.cache_misses"));
  const auto* th = obs.find("time_histograms");
  if (th == nullptr || !th->is_object()) return std::string("missing time_histograms");
  for (int s = 0; s < 4; ++s) {
    const auto* hist = th->find(kStageNames[s]);
    const auto* buckets = hist != nullptr ? hist->find("buckets") : nullptr;
    if (buckets == nullptr || !buckets->is_array()) {
      return std::string("missing histogram ") + kStageNames[s];
    }
    out.stages[static_cast<std::size_t>(s)].clear();
    for (const auto& b : buckets->items()) {
      out.stages[static_cast<std::size_t>(s)].push_back(num_or_zero(&b));
    }
  }
  return std::nullopt;
}

/// Parses the tmsd-stats-v1 payload. Returns a failure description on
/// anything structurally off — tmstop treats that as a server bug.
std::optional<std::string> parse_snapshot(const std::string& payload, Snapshot& out) {
  auto parsed = support::parse_json(payload);
  if (const auto* err = std::get_if<std::string>(&parsed)) return *err;
  const auto& root = std::get<support::JsonValue>(parsed);
  const auto* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != "tmsd-stats-v1") {
    return std::string("missing schema tmsd-stats-v1");
  }
  out.uptime_ms = static_cast<std::int64_t>(num_or_zero(root.find("uptime_ms")));
  out.queue_depth = static_cast<std::int64_t>(num_or_zero(root.find("queue_depth")));
  out.in_flight = static_cast<std::int64_t>(num_or_zero(root.find("in_flight")));
  const auto* draining = root.find("draining");
  out.draining = draining != nullptr && draining->is_bool() && draining->as_bool();
  const auto* obs = root.find("observability");
  if (obs == nullptr || !obs->is_object()) return std::string("missing observability object");
  return fill_from_observability(*obs, out);
}

/// One shard row of a cluster-stats-v1 snapshot.
struct ClusterShard {
  std::string address;
  bool healthy = true;
  bool ok = false;
  std::string error;
  Snapshot snap;  ///< only meaningful when ok
};

/// Parses the cluster-stats-v1 payload: the merged aggregate into
/// `aggregate` (uptime/queue fields stay zero — they do not aggregate)
/// and one ClusterShard per shards[] entry.
std::optional<std::string> parse_cluster(const std::string& payload, Snapshot& aggregate,
                                         std::vector<ClusterShard>& shards,
                                         bool& source_router, bool& draining) {
  auto parsed = support::parse_json(payload);
  if (const auto* err = std::get_if<std::string>(&parsed)) return *err;
  const auto& root = std::get<support::JsonValue>(parsed);
  const auto* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != "cluster-stats-v1") {
    return std::string("missing schema cluster-stats-v1");
  }
  const auto* source = root.find("source");
  source_router = source != nullptr && source->is_string() && source->as_string() == "tmsrouter";
  const auto* d = root.find("draining");
  draining = d != nullptr && d->is_bool() && d->as_bool();
  const auto* agg = root.find("aggregate");
  if (agg == nullptr || !agg->is_object()) return std::string("missing aggregate object");
  if (auto err = fill_from_observability(*agg, aggregate)) return err;
  const auto* arr = root.find("shards");
  if (arr == nullptr || !arr->is_array()) return std::string("missing shards array");
  shards.clear();
  for (const auto& item : arr->items()) {
    ClusterShard s;
    const auto* address = item.find("address");
    if (address != nullptr && address->is_string()) s.address = address->as_string();
    const auto* healthy = item.find("healthy");
    s.healthy = healthy == nullptr || !healthy->is_bool() || healthy->as_bool();
    const auto* ok = item.find("ok");
    s.ok = ok != nullptr && ok->is_bool() && ok->as_bool();
    if (!s.ok) {
      const auto* error = item.find("error");
      if (error != nullptr && error->is_string()) s.error = error->as_string();
    } else {
      const auto* stats = item.find("stats");
      const auto* obs = stats != nullptr ? stats->find("observability") : nullptr;
      if (obs == nullptr || !obs->is_object()) {
        return "shard " + s.address + ": missing observability object";
      }
      if (auto err = fill_from_observability(*obs, s.snap)) {
        return "shard " + s.address + ": " + *err;
      }
    }
    shards.push_back(std::move(s));
  }
  return std::nullopt;
}

/// A monotonic counter moving backwards between polls means the daemon
/// restarted; one marker beats four nonsense rates.
bool restarted_since(const Snapshot& prev, const Snapshot& cur) {
  return cur.requests < prev.requests || cur.responses_ok < prev.responses_ok ||
         cur.responses_error < prev.responses_error || cur.overload < prev.overload;
}

/// Quantile estimate from log2-microsecond buckets: the upper edge
/// (2^b us) of the first bucket whose cumulative count reaches q of the
/// total. Coarse by design — within 2x, which is all a live dashboard
/// needs.
double quantile_us(const std::vector<double>& buckets, double q) {
  double total = 0;
  for (const double b : buckets) total += b;
  if (total <= 0) return 0;
  double cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= q * total) return b == 0 ? 0.0 : static_cast<double>(1ULL << b);
  }
  return static_cast<double>(1ULL << (buckets.size() - 1));
}

std::string fmt_us(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  }
  return buf;
}

/// Per-second rate of a monotonic counter across two snapshots.
double rate(double prev, double cur, double dt_s) {
  return dt_s > 0 ? std::max(0.0, cur - prev) / dt_s : 0.0;
}

void render(const Snapshot& cur, const Snapshot* prev, double dt_s, const std::string& health,
            bool clear, bool restarted) {
  if (clear) std::printf("\033[H\033[2J");
  std::printf("tmstop: %s\n", health.c_str());
  const double hits_total = cur.cache_hits + cur.cache_misses;
  std::printf("  requests %.0f  ok %.0f  errors %.0f  overload %.0f  cache hit %.1f%%\n",
              cur.requests, cur.responses_ok, cur.responses_error, cur.overload,
              hits_total > 0 ? 100.0 * cur.cache_hits / hits_total : 0.0);
  if (prev != nullptr && restarted) {
    // The counters moved backwards: the daemon restarted between polls.
    // Every rate this tick is 0 by definition, not by arithmetic.
    std::printf("  rates/s: requests 0.0  ok 0.0  errors 0.0  overload rejects 0.0 [restart]\n");
  } else if (prev != nullptr) {
    std::printf("  rates/s: requests %.1f  ok %.1f  errors %.1f  overload rejects %.1f\n",
                rate(prev->requests, cur.requests, dt_s),
                rate(prev->responses_ok, cur.responses_ok, dt_s),
                rate(prev->responses_error, cur.responses_error, dt_s),
                rate(prev->overload, cur.overload, dt_s));
  }
  // Histogram deltas against a restarted daemon's buckets would be
  // nonsense too — fall back to the fresh lifetime buckets.
  if (restarted) prev = nullptr;
  for (int s = 0; s < 4; ++s) {
    const auto& lifetime = cur.stages[static_cast<std::size_t>(s)];
    // Prefer the delta histogram (what happened since the last tick);
    // fall back to lifetime buckets when the interval saw no traffic.
    std::vector<double> delta;
    if (prev != nullptr && prev->stages[static_cast<std::size_t>(s)].size() == lifetime.size()) {
      double n = 0;
      for (std::size_t b = 0; b < lifetime.size(); ++b) {
        const double d =
            std::max(0.0, lifetime[b] - prev->stages[static_cast<std::size_t>(s)][b]);
        delta.push_back(d);
        n += d;
      }
      if (n <= 0) delta.clear();
    }
    const std::vector<double>& src = delta.empty() ? lifetime : delta;
    double count = 0;
    for (const double b : src) count += b;
    std::printf("  %-10s %s n=%.0f  p50 %s  p90 %s  p99 %s\n", kStageLabels[s],
                delta.empty() ? "life" : "tick", count, fmt_us(quantile_us(src, 0.50)).c_str(),
                fmt_us(quantile_us(src, 0.90)).c_str(), fmt_us(quantile_us(src, 0.99)).c_str());
  }
  std::printf("  queue depth %lld  in flight %lld  uptime %.1fs\n", (long long)cur.queue_depth,
              (long long)cur.in_flight, static_cast<double>(cur.uptime_ms) / 1000.0);
  std::fflush(stdout);
}

void render_cluster(const Snapshot& aggregate, const std::vector<ClusterShard>& shards,
                    const Snapshot* prev, double dt_s, const std::string& health, bool clear,
                    bool restarted, bool source_router, bool draining) {
  if (clear) std::printf("\033[H\033[2J");
  std::size_t shards_ok = 0;
  for (const ClusterShard& s : shards) {
    if (s.ok) ++shards_ok;
  }
  std::printf("tmstop: cluster via %s  shards %zu/%zu ok%s  (%s)\n",
              source_router ? "tmsrouter" : "single tmsd", shards_ok, shards.size(),
              draining ? "  [draining]" : "", health.c_str());
  const double hits_total = aggregate.cache_hits + aggregate.cache_misses;
  std::printf("  aggregate: requests %.0f  ok %.0f  errors %.0f  overload %.0f  cache hit %.1f%%\n",
              aggregate.requests, aggregate.responses_ok, aggregate.responses_error,
              aggregate.overload, hits_total > 0 ? 100.0 * aggregate.cache_hits / hits_total : 0.0);
  if (prev != nullptr && restarted) {
    std::printf("  rates/s: requests 0.0  ok 0.0  errors 0.0 [restart]\n");
  } else if (prev != nullptr) {
    std::printf("  rates/s: requests %.1f  ok %.1f  errors %.1f\n",
                rate(prev->requests, aggregate.requests, dt_s),
                rate(prev->responses_ok, aggregate.responses_ok, dt_s),
                rate(prev->responses_error, aggregate.responses_error, dt_s));
  }
  // Aggregate per-stage percentiles (lifetime — the merged buckets are
  // an exact bucket-wise sum of the shards', so these quantiles carry
  // real cluster-wide information, not an average of averages).
  for (int s = 0; s < 4; ++s) {
    const auto& buckets = aggregate.stages[static_cast<std::size_t>(s)];
    double count = 0;
    for (const double b : buckets) count += b;
    std::printf("  %-10s n=%.0f  p50 %s  p90 %s  p99 %s\n", kStageLabels[s], count,
                fmt_us(quantile_us(buckets, 0.50)).c_str(),
                fmt_us(quantile_us(buckets, 0.90)).c_str(),
                fmt_us(quantile_us(buckets, 0.99)).c_str());
  }
  for (const ClusterShard& s : shards) {
    if (!s.ok) {
      std::printf("  shard %-24s %s  UNREACHABLE%s%s\n", s.address.c_str(),
                  s.healthy ? "healthy" : "EJECTED", s.error.empty() ? "" : ": ",
                  s.error.c_str());
      continue;
    }
    const auto& total = s.snap.stages[3];  // serve.latency.total
    double count = 0;
    for (const double b : total) count += b;
    std::printf("  shard %-24s %s  requests %.0f  p50 %s  p90 %s  p99 %s\n", s.address.c_str(),
                s.healthy ? "healthy" : "EJECTED", s.snap.requests,
                fmt_us(quantile_us(total, 0.50)).c_str(),
                fmt_us(quantile_us(total, 0.90)).c_str(),
                fmt_us(quantile_us(total, 0.99)).c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp;
  long long interval_ms = 1000;
  long long count = 0;
  bool expect_traffic = false;
  bool cluster = false;
  bool no_clear = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--tcp") {
      tcp = next("--tcp");
    } else if (a == "--interval-ms") {
      interval_ms = std::atoll(next("--interval-ms"));
    } else if (a == "--count") {
      count = std::atoll(next("--count"));
    } else if (a == "--expect-traffic") {
      expect_traffic = true;
    } else if (a == "--cluster") {
      cluster = true;
    } else if (a == "--no-clear") {
      no_clear = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() == tcp.empty()) {
    std::fprintf(stderr, "exactly one of --socket / --tcp is required\n");
    return usage(argv[0]);
  }
  if (interval_ms < 1) {
    std::fprintf(stderr, "--interval-ms must be positive\n");
    return 2;
  }
  const bool clear = !no_clear && ::isatty(STDOUT_FILENO) == 1;

  serve::Client client;
  std::optional<std::string> cerr;
  if (!socket_path.empty()) {
    cerr = client.connect_unix(socket_path);
  } else {
    const std::size_t colon = tcp.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--tcp expects HOST:PORT\n");
      return 2;
    }
    cerr = client.connect_tcp(tcp.substr(0, colon), std::atoi(tcp.c_str() + colon + 1));
  }
  if (cerr.has_value()) {
    std::fprintf(stderr, "tmstop: %s\n", cerr->c_str());
    return 1;
  }

  Snapshot prev;
  bool have_prev = false;
  bool saw_traffic = false;
  long long polls = 0;
  auto last_poll = std::chrono::steady_clock::now();
  for (;;) {
    std::string payload;
    const auto poll_err = cluster ? client.cluster_stats(payload) : client.stats(payload);
    if (poll_err.has_value()) {
      // Server went away: a clean end for an unbounded watch that got
      // at least one snapshot, an error for a bounded one cut short.
      if (count == 0 && polls > 0) {
        std::printf("tmstop: server closed (%s)\n", poll_err->c_str());
        break;
      }
      std::fprintf(stderr, "tmstop: stats: %s\n", poll_err->c_str());
      return 1;
    }
    std::string health;
    if (const auto err = client.health(health)) {
      // The server may drop the connection between the STATS and HEALTH
      // round trips of one tick; treat that the same as a close on STATS.
      if (count == 0 && polls > 0) {
        std::printf("tmstop: server closed (%s)\n", err->c_str());
        break;
      }
      std::fprintf(stderr, "tmstop: health: %s\n", err->c_str());
      return 1;
    }
    Snapshot cur;
    std::vector<ClusterShard> shards;
    bool source_router = false;
    bool cluster_draining = false;
    if (cluster) {
      if (const auto err = parse_cluster(payload, cur, shards, source_router,
                                         cluster_draining)) {
        std::fprintf(stderr, "tmstop: bad cluster-stats payload: %s\n", err->c_str());
        return 1;
      }
    } else if (const auto err = parse_snapshot(payload, cur)) {
      std::fprintf(stderr, "tmstop: bad stats payload: %s\n", err->c_str());
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt_s = std::chrono::duration<double>(now - last_poll).count();
    last_poll = now;
    if (have_prev && cur.requests > prev.requests) saw_traffic = true;
    const bool restarted = have_prev && restarted_since(prev, cur);
    if (cluster) {
      render_cluster(cur, shards, have_prev ? &prev : nullptr, dt_s, health, clear, restarted,
                     source_router, cluster_draining);
    } else {
      render(cur, have_prev ? &prev : nullptr, dt_s, health, clear, restarted);
    }
    prev = std::move(cur);
    have_prev = true;
    ++polls;
    if (count > 0 && polls >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (expect_traffic && !saw_traffic) {
    std::fprintf(stderr,
                 "tmstop: --expect-traffic, but no request-rate increase was observed "
                 "across %lld poll(s)\n",
                 polls);
    return 1;
  }
  return 0;
}
