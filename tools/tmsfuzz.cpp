// tmsfuzz — differential fuzzer for the scheduling + SpMT pipeline.
//
// Sweeps seeded random loops (workloads::builder shapes) across a grid of
// SpMT configurations, schedules each with SMS, IMS and TMS, and runs the
// independent schedule validator (check/validate) plus the differential
// oracle (check/oracle) on every result. On a failure the offending loop
// is shrunk to a 1-minimal reproducer (check/shrink) and written as a
// .loop file that `tmsc` and the test suite can replay.
//
// Runs are independent (each builds its loop from its own seed, with one
// private RNG per job), so the sweep phase fans out over a
// driver::JobPool; failure handling — printing, shrinking, reproducer
// writing — stays single-threaded and walks the results in submission
// order, so the output and the failure signatures are seed-for-seed
// identical whatever --jobs is.
//
// Usage:
//   tmsfuzz [--seeds N]        number of seeds to sweep       (default 64)
//           [--start-seed S]   first seed                     (default 1)
//           [--iters N]        oracle iterations per run      (default 128)
//           [--schedulers L]   comma list of sms,ims,tms      (default all)
//           [--policy P]       core-allocation policy for the config grid:
//                              random (default; one seed-dependent policy +
//                              bus setting per seed), or a fixed name from
//                              modulo, round_robin_stride, locality,
//                              dep_distance (parameters still randomised)
//           [--jobs N]         worker threads                 (default ncpu)
//           [--out DIR]        where reproducers are written  (default .)
//           [--inject-bug]     perturb each schedule by one cycle after
//                              scheduling (a synthetic off-by-one in the
//                              scheduling window) to prove the validator
//                              catches real scheduler bugs end to end
//           [--frames]         fuzz the tmsd wire-protocol parsers
//                              (serve/frame, serve/message) instead of the
//                              scheduling pipeline: random noise, split
//                              feeds, byte mutations, and round-trip
//                              fixpoints, driven by --seeds/--start-seed
//           [--verbose]        per-run progress
//
// Exit status: 0 when every run is clean, 1 when any failure was found
// (reproducers are then on disk), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "check/validate.hpp"
#include "driver/job_pool.hpp"
#include "driver/schedule_cache.hpp"
#include "ir/textio.hpp"
#include "policy/policy.hpp"
#include "sched/ims.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "serve/frame.hpp"
#include "serve/handler.hpp"
#include "serve/message.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "workloads/builder.hpp"

using namespace tms;

namespace {

struct FuzzOptions {
  std::uint64_t seeds = 64;
  std::uint64_t start_seed = 1;
  std::int64_t iters = 128;
  std::vector<std::string> schedulers = {"sms", "ims", "tms"};
  int jobs = 0;  ///< 0 = hardware_concurrency
  std::string out_dir = ".";
  /// "random", or a fixed policy name to pin the whole sweep to.
  std::string policy = "random";
  bool inject_bug = false;
  bool frames = false;
  bool verbose = false;
};

/// The same shape family the property tests sweep, kept in sync by the
/// fuzz-smoke ctest run: structural knobs drawn from one seed.
workloads::LoopShape fuzz_shape(std::uint64_t seed) {
  support::Rng rng(seed);
  workloads::LoopShape s;
  s.name = "fuzz_" + std::to_string(seed);
  s.target_instrs = rng.uniform_int(4, 40);
  s.rec_circuit_delay = rng.chance(0.5) ? rng.uniform_int(4, 14) : 0;
  s.rec_circuit_len = rng.uniform_int(2, 5);
  s.accumulators = rng.uniform_int(0, 3);
  s.feeders = rng.uniform_int(0, 3);
  s.mem_deps = rng.uniform_int(0, 3);
  s.mem_prob_lo = 0.01;
  s.mem_prob_hi = 0.35;
  s.fp_fraction = rng.uniform(0.1, 0.9);
  s.seed = rng.fork_seed();
  return s;
}

/// The configuration grid one seed is swept across: the paper's quad-core
/// baseline with a seed-dependent core count, plus a slow-interconnect
/// variant that stresses sync-delay and ring-backpressure paths. Both
/// entries share a seed-dependent (or pinned, --policy NAME) allocation
/// policy and shared-bus setting, so every policy × engine combination is
/// swept by the validator and the differential oracle. Pure in (seed,
/// policy_mode): the shrink predicate and the reporting pass rebuild the
/// identical grid.
std::vector<machine::SpmtConfig> config_grid(std::uint64_t seed, const std::string& policy_mode) {
  support::Rng rng(seed ^ 0xC0FF1EULL);  // distinct stream from fuzz_shape
  machine::SpmtConfig base;
  const int cores[] = {2, 4, 8};
  base.ncore = cores[rng.bounded(3)];

  // Unconditional draws keep the stream aligned between modes.
  const machine::AllocPolicy policies[] = {
      machine::AllocPolicy::kModulo, machine::AllocPolicy::kRoundRobinStride,
      machine::AllocPolicy::kLocality, machine::AllocPolicy::kDepDistance};
  const machine::AllocPolicy drawn = policies[rng.bounded(4)];
  base.policy_stride = 1 + static_cast<int>(rng.bounded(3));
  base.policy_block = 1 + static_cast<int>(rng.bounded(4));
  const int bus_bytes[] = {0, 4, 8, 16};
  base.bus_bytes_per_transfer = bus_bytes[rng.bounded(4)];
  const int bus_bw[] = {8, 16, 32};
  base.bus_bytes_per_cycle = bus_bw[rng.bounded(3)];
  if (policy_mode == "random") {
    base.policy = drawn;
  } else {
    [[maybe_unused]] const bool known = policy::policy_from_string(policy_mode, base.policy);
    TMS_ASSERT(known);  // main() validated the flag
  }

  machine::SpmtConfig slow = base;
  slow.send_cycles = 2;
  slow.hop_cycles = 1;
  slow.recv_cycles = 2;
  slow.c_reg_com = 5;
  slow.ring_queue_entries = 4;
  slow.c_spn = 5;
  return {base, slow};
}

/// A synthetic scheduler bug: shift one node of a finished schedule by a
/// cycle, the way an off-by-one in the scheduling window would. Prefers
/// the source of a zero-slack dependence so the perturbation is a real
/// constraint violation rather than a harmless slide.
void inject_off_by_one(sched::Schedule& s) {
  const ir::Loop& loop = s.loop();
  const machine::MachineModel& mach = s.machine();
  for (const ir::DepEdge& e : loop.deps()) {
    int delay = 0;
    if (!(e.kind == ir::DepKind::kMemory && e.distance >= 1)) {
      delay = e.type == ir::DepType::kFlow ? mach.latency(loop.instr(e.src).op)
              : e.type == ir::DepType::kOutput ? 1
                                               : 0;
    }
    if (s.slot(e.dst) - s.slot(e.src) == delay - s.ii() * e.distance) {
      s.set_slot(e.src, s.slot(e.src) + 1);
      return;
    }
  }
  s.set_slot(0, s.slot(0) + 1);  // no tight edge: still perturb
}

/// One full pipeline run: schedule -> validate -> lower -> cross-check ->
/// differential oracle. Returns a failure description, or nullopt when
/// every check passed.
std::optional<std::string> run_one(const ir::Loop& loop, const machine::MachineModel& mach,
                                   const machine::SpmtConfig& cfg, const std::string& scheduler,
                                   std::int64_t iters, bool inject_bug) {
  std::optional<sched::Schedule> schedule;
  check::CheckOptions check_opts;
  if (scheduler == "sms") {
    if (auto r = sched::sms_schedule(loop, mach)) schedule.emplace(std::move(r->schedule));
  } else if (scheduler == "ims") {
    if (auto r = sched::ims_schedule(loop, mach)) schedule.emplace(std::move(r->schedule));
  } else {
    if (auto r = sched::tms_schedule(loop, mach, cfg)) {
      check_opts.c_delay_threshold = r->c_delay_threshold;
      check_opts.p_max = r->p_max;
      schedule.emplace(std::move(r->schedule));
    }
  }
  if (!schedule.has_value()) return scheduler + " found no schedule";

  if (inject_bug) inject_off_by_one(*schedule);

  const check::CheckReport valid = check::validate_schedule(*schedule, cfg, check_opts);
  if (!valid.ok()) return "validator: " + valid.to_string();

  // lower_kernel aborts on modulo-invalid schedules; the validator above
  // subsumes that check, so reaching this point is safe.
  const codegen::KernelProgram kp = codegen::lower_kernel(*schedule, cfg);
  const check::CheckReport lowered = check::validate_kernel_program(kp, *schedule, cfg);
  if (!lowered.ok()) return "kernel program: " + lowered.to_string();

  check::OracleOptions oracle_opts;
  oracle_opts.iterations = iters;
  oracle_opts.stream_seed = 0x5EED ^ static_cast<std::uint64_t>(loop.num_instrs());
  const check::OracleReport oracle =
      check::run_differential_oracle(loop, *schedule, cfg, oracle_opts);
  if (!oracle.ok()) return "oracle: " + oracle.to_string();
  return std::nullopt;
}

/// The stable prefix of a failure message ("validator: fu-overflow",
/// "oracle: fingerprint-mismatch", ...) used as the shrink predicate:
/// a candidate only counts as reproducing when it fails the same way,
/// so the minimised loop exhibits the *original* bug, not just any bug.
std::string failure_signature(const std::string& msg) {
  const std::size_t first = msg.find(':');
  if (first == std::string::npos) return msg;
  const std::size_t second = msg.find(':', first + 1);
  return msg.substr(0, second == std::string::npos ? msg.size() : second);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start-seed S] [--iters N] [--jobs N] [--out DIR]\n"
               "          [--schedulers sms,ims,tms]\n"
               "          [--policy random|modulo|round_robin_stride|locality|dep_distance]\n"
               "          [--inject-bug] [--frames] [--verbose]\n",
               argv0);
  return 2;
}

/// Feed `bytes` to a FrameReader in seed-dependent chunk sizes, pulling
/// frames (and the terminal error, if any) as they complete. The parser
/// must produce the same frame sequence whatever the chunking — that is
/// the property this helper exists to stress.
struct FedResult {
  std::vector<serve::Frame> frames;
  serve::FrameError error = serve::FrameError::kNone;
};

FedResult feed_chunked(std::string_view bytes, support::Rng& rng, std::uint32_t max_payload) {
  serve::FrameReader reader(max_payload);
  FedResult out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        bytes.size() - pos, 1 + rng.bounded(static_cast<std::uint64_t>(bytes.size())));
    reader.feed(bytes.substr(pos, chunk));
    pos += chunk;
    serve::Frame f;
    for (;;) {
      const serve::FrameReader::Next next = reader.next(f);
      if (next == serve::FrameReader::Next::kFrame) {
        out.frames.push_back(f);
        continue;
      }
      if (next == serve::FrameReader::Next::kError) out.error = reader.error();
      break;
    }
    if (out.error != serve::FrameError::kNone) break;
  }
  return out;
}

std::string random_bytes(support::Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(rng.bounded(256));
  return s;
}

/// One seed's worth of wire-protocol fuzzing. Returns a failure
/// description, or nullopt when every property held.
std::optional<std::string> run_frames_one(std::uint64_t seed) {
  support::Rng rng(seed ^ 0xF8A3E5ULL);  // distinct stream from fuzz_shape

  // Property 1: encode -> chunked decode is the identity, for a batch of
  // frames of every type and payload sizes from empty to multi-chunk.
  {
    std::vector<serve::Frame> sent;
    std::string stream;
    const int n = 1 + static_cast<int>(rng.bounded(5));
    for (int i = 0; i < n; ++i) {
      serve::Frame f;
      const serve::FrameType types[] = {serve::FrameType::kRequest, serve::FrameType::kResponse,
                                        serve::FrameType::kPing, serve::FrameType::kPong,
                                        serve::FrameType::kStats, serve::FrameType::kStatsReply,
                                        serve::FrameType::kHealth, serve::FrameType::kHealthReply,
                                        serve::FrameType::kPeek, serve::FrameType::kPeekReply};
      f.type = types[rng.bounded(10)];
      f.payload = random_bytes(rng, rng.bounded(4096));
      stream += serve::encode_frame(f.type, f.payload);
      sent.push_back(std::move(f));
    }
    const FedResult got = feed_chunked(stream, rng, serve::kMaxPayloadBytes);
    if (got.error != serve::FrameError::kNone) {
      return std::string("valid stream reported ") + std::string(to_string(got.error));
    }
    if (got.frames.size() != sent.size()) {
      return "decoded " + std::to_string(got.frames.size()) + " of " +
             std::to_string(sent.size()) + " frames";
    }
    for (std::size_t i = 0; i < sent.size(); ++i) {
      if (got.frames[i].type != sent[i].type || got.frames[i].payload != sent[i].payload) {
        return "frame " + std::to_string(i) + " did not round-trip";
      }
    }
  }

  // Property 2: a length prefix above the reader's cap is rejected
  // before any payload is buffered, and the reader stays poisoned even
  // when fed a subsequently valid frame.
  {
    const std::string big = serve::encode_frame(serve::FrameType::kRequest,
                                                std::string(512, 'x'));
    serve::FrameReader reader(/*max_payload=*/256);
    reader.feed(big);
    serve::Frame f;
    if (reader.next(f) != serve::FrameReader::Next::kError ||
        reader.error() != serve::FrameError::kOversize) {
      return std::string("oversize frame not rejected");
    }
    reader.feed(serve::encode_frame(serve::FrameType::kPing, {}));
    if (reader.next(f) != serve::FrameReader::Next::kError) {
      return std::string("poisoned reader recovered");
    }
  }

  // Property 3: mutated headers never crash; a corrupted magic byte in
  // the first frame is always detected.
  {
    std::string stream = serve::encode_frame(serve::FrameType::kRequest,
                                             random_bytes(rng, 64 + rng.bounded(256)));
    const std::size_t victim = rng.bounded(stream.size());
    const char orig = stream[victim];
    stream[victim] = static_cast<char>(orig ^ static_cast<char>(1 + rng.bounded(255)));
    const FedResult got = feed_chunked(stream, rng, serve::kMaxPayloadBytes);
    if (victim < 4 && got.error != serve::FrameError::kBadMagic) {
      return std::string("corrupt magic byte not flagged");
    }
    (void)got;
  }

  // Property 4: pure noise never crashes either parser.
  {
    const std::string noise = random_bytes(rng, rng.bounded(2048));
    (void)feed_chunked(noise, rng, serve::kMaxPayloadBytes);
    (void)serve::parse_request(noise);
    (void)serve::parse_response(noise);
  }

  // Property 5: request serialise -> parse -> serialise is a fixpoint.
  {
    serve::Request req;
    req.id = rng.fork_seed();
    const char* scheds[] = {"sms", "ims", "tms"};
    req.scheduler = scheds[rng.bounded(3)];
    req.ncore = 1 + static_cast<int>(rng.bounded(16));
    req.deadline_ms = static_cast<std::int64_t>(rng.bounded(100000));
    // Policy/bus fields are omit-when-default on the wire; mixing default
    // and non-default draws keeps both serialisation shapes in the loop.
    req.policy = static_cast<machine::AllocPolicy>(rng.bounded(4));
    req.policy_stride = 1 + static_cast<int>(rng.bounded(4));
    req.policy_block = 1 + static_cast<int>(rng.bounded(4));
    req.bus_bytes_per_transfer = static_cast<int>(rng.bounded(3)) * 8;
    req.bus_bytes_per_cycle = 8 << rng.bounded(3);
    req.loop = workloads::build_loop(fuzz_shape(seed));
    const std::string wire = serve::serialise_request(req);
    auto parsed = serve::parse_request(wire);
    if (const auto* err = std::get_if<std::string>(&parsed)) {
      return "own request rejected: " + *err;
    }
    if (serve::serialise_request(std::get<serve::Request>(parsed)) != wire) {
      return std::string("request round-trip not a fixpoint");
    }
    // Mutations must never crash, and whatever parses must re-serialise
    // stably (parse . serialise . parse == parse).
    std::string mutated = wire;
    const std::size_t victim = rng.bounded(mutated.size());
    mutated[victim] =
        static_cast<char>(mutated[victim] ^ static_cast<char>(1 + rng.bounded(255)));
    auto reparsed = serve::parse_request(mutated);
    if (auto* ok = std::get_if<serve::Request>(&reparsed)) {
      const std::string wire2 = serve::serialise_request(*ok);
      auto third = serve::parse_request(wire2);
      if (std::get_if<serve::Request>(&third) == nullptr ||
          serve::serialise_request(std::get<serve::Request>(third)) != wire2) {
        return std::string("mutated request parse not stable");
      }
    }
  }

  // Property 6: response serialise -> parse -> serialise is a fixpoint,
  // for both the ok and the error shape.
  {
    serve::Response resp;
    resp.id = rng.fork_seed();
    resp.ok = rng.chance(0.5);
    if (resp.ok) {
      resp.scheduler = "tms";
      resp.cache_hit = rng.chance(0.5);
      resp.ii = 1 + static_cast<int>(rng.bounded(64));
      resp.mii = 1 + static_cast<int>(rng.bounded(resp.ii));
      resp.c_delay_threshold = static_cast<int>(rng.bounded(20)) - 1;
      resp.p_max = rng.uniform(0.0, 1.0);
      resp.server_ms = rng.uniform(0.0, 500.0);
      const std::size_t n = 1 + rng.bounded(64);
      for (std::size_t i = 0; i < n; ++i) {
        resp.slots.push_back(static_cast<int>(rng.bounded(256)));
      }
    } else {
      resp.code = static_cast<serve::ErrorCode>(rng.bounded(8));
      resp.retry_after_ms = static_cast<std::int64_t>(rng.bounded(10000));
      resp.message = "boom\nwith newline " + std::to_string(rng.fork_seed());
    }
    const std::string wire = serve::serialise_response(resp);
    auto parsed = serve::parse_response(wire);
    if (const auto* err = std::get_if<std::string>(&parsed)) {
      return "own response rejected: " + *err;
    }
    if (serve::serialise_response(std::get<serve::Response>(parsed)) != wire) {
      return std::string("response round-trip not a fixpoint");
    }
  }

  // Property 7: the PEEK peer-fill codec round-trips (query, hit reply,
  // miss reply), and noise fed to either parser errors instead of
  // crashing or fabricating a hit.
  {
    serve::PeekQuery q;
    q.key = rng.fork_seed();
    q.expect_instrs = 1 + static_cast<int>(rng.bounded(512));
    auto parsed = serve::parse_peek(serve::serialise_peek(q));
    const auto* back = std::get_if<serve::PeekQuery>(&parsed);
    if (back == nullptr || back->key != q.key || back->expect_instrs != q.expect_instrs) {
      return std::string("peek query did not round-trip");
    }

    std::optional<driver::ScheduleCache::Entry> entry;
    if (rng.chance(0.5)) {
      driver::ScheduleCache::Entry e;
      e.scheduler = "tms";
      e.ii = 1 + static_cast<int>(rng.bounded(64));
      e.mii = 1 + static_cast<int>(rng.bounded(e.ii));
      e.c_delay_threshold = static_cast<int>(rng.bounded(20)) - 1;
      e.p_max = rng.uniform(0.0, 1.0);
      const std::size_t n = 1 + rng.bounded(64);
      for (std::size_t i = 0; i < n; ++i) e.slots.push_back(static_cast<int>(rng.bounded(256)));
      entry = std::move(e);
    }
    auto reply = serve::parse_peek_reply(serve::serialise_peek_reply(entry));
    const auto* got = std::get_if<std::optional<driver::ScheduleCache::Entry>>(&reply);
    if (got == nullptr || got->has_value() != entry.has_value()) {
      return std::string("peek reply did not round-trip");
    }
    if (entry.has_value() &&
        ((*got)->ii != entry->ii || (*got)->slots != entry->slots ||
         (*got)->scheduler != entry->scheduler)) {
      return std::string("peek hit reply did not round-trip");
    }

    const std::string noise = random_bytes(rng, rng.bounded(512));
    if (std::get_if<std::string>(&(parsed = serve::parse_peek(noise))) == nullptr) {
      return std::string("noise accepted as a peek query");
    }
    auto noisy_reply = serve::parse_peek_reply(noise);
    if (const auto* hit = std::get_if<std::optional<driver::ScheduleCache::Entry>>(&noisy_reply);
        hit != nullptr && hit->has_value()) {
      return std::string("noise fabricated a peek hit");
    }
  }
  return std::nullopt;
}

/// --frames: sweep the wire-protocol properties across the seed range.
int run_frames(const FuzzOptions& opt) {
  std::uint64_t failures = 0;
  for (std::uint64_t seed = opt.start_seed; seed < opt.start_seed + opt.seeds; ++seed) {
    const auto failure = run_frames_one(seed);
    if (opt.verbose) {
      std::printf("frames seed %llu: %s\n", (unsigned long long)seed,
                  failure.has_value() ? "FAIL" : "ok");
    }
    if (failure.has_value()) {
      ++failures;
      std::printf("FAILURE frames seed %llu: %s\n", (unsigned long long)seed, failure->c_str());
    }
  }
  std::printf("tmsfuzz: %llu frame seed(s), %llu failure(s)\n", (unsigned long long)opt.seeds,
              (unsigned long long)failures);
  return failures == 0 ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = (comma == std::string::npos) ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seeds") {
      opt.seeds = std::strtoull(next("--seeds"), nullptr, 10);
    } else if (a == "--start-seed") {
      opt.start_seed = std::strtoull(next("--start-seed"), nullptr, 10);
    } else if (a == "--iters") {
      opt.iters = std::atoll(next("--iters"));
    } else if (a == "--schedulers") {
      opt.schedulers = split_csv(next("--schedulers"));
    } else if (a == "--jobs") {
      opt.jobs = std::atoi(next("--jobs"));
    } else if (a == "--out") {
      opt.out_dir = next("--out");
    } else if (a == "--policy") {
      opt.policy = next("--policy");
    } else if (a == "--inject-bug") {
      opt.inject_bug = true;
    } else if (a == "--frames") {
      opt.frames = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  for (const std::string& s : opt.schedulers) {
    if (s != "sms" && s != "ims" && s != "tms") {
      std::fprintf(stderr, "unknown scheduler '%s'\n", s.c_str());
      return 2;
    }
  }
  if (opt.policy != "random") {
    machine::AllocPolicy parsed;
    if (!policy::policy_from_string(opt.policy, parsed)) {
      std::fprintf(stderr, "unknown policy '%s'\n", opt.policy.c_str());
      return 2;
    }
  }

  if (opt.frames) return run_frames(opt);

  const machine::MachineModel mach;

  // Enumerate every (seed, config, scheduler) run up front, in the same
  // nesting order the serial sweep used; the sweep then fans out on the
  // JobPool with results landing at their submission index.
  struct RunSpec {
    std::uint64_t seed = 0;
    std::size_t cfg_index = 0;
    std::string scheduler;
  };
  std::vector<RunSpec> specs;
  for (std::uint64_t seed = opt.start_seed; seed < opt.start_seed + opt.seeds; ++seed) {
    const std::size_t ncfg = config_grid(seed, opt.policy).size();
    for (std::size_t c = 0; c < ncfg; ++c) {
      for (const std::string& scheduler : opt.schedulers) {
        specs.push_back({seed, c, scheduler});
      }
    }
  }

  // Each job is pure in its spec: the loop is rebuilt from the seed with
  // a job-private RNG, so nothing is shared across jobs and the outcome
  // vector is identical at --jobs 1 and --jobs 8.
  std::vector<std::optional<std::string>> outcomes(specs.size());
  driver::JobPool pool(opt.jobs);
  pool.run(specs.size(), [&](std::size_t i) {
    const RunSpec& spec = specs[i];
    const ir::Loop loop = workloads::build_loop(fuzz_shape(spec.seed));
    const machine::SpmtConfig cfg = config_grid(spec.seed, opt.policy)[spec.cfg_index];
    outcomes[i] = run_one(loop, mach, cfg, spec.scheduler, opt.iters, opt.inject_bug);
  });

  // Reporting and shrinking stay single-threaded, in submission order:
  // the shrinker's predicate reruns the pipeline many times and its
  // signature check must match the original failure, not a concurrent
  // one's.
  std::uint64_t failures = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    const std::optional<std::string>& failure = outcomes[i];
    const machine::SpmtConfig cfg = config_grid(spec.seed, opt.policy)[spec.cfg_index];
    if (opt.verbose) {
      std::printf("seed %llu ncore %d %s %s: %s\n", (unsigned long long)spec.seed, cfg.ncore,
                  std::string(policy::to_string(cfg.policy)).c_str(), spec.scheduler.c_str(),
                  failure.has_value() ? "FAIL" : "ok");
    }
    if (!failure.has_value()) continue;
    ++failures;
    std::printf(
        "FAILURE seed %llu, ncore %d, c_reg_com %d, policy %s (stride %d, block %d), "
        "bus %d/%d, scheduler %s:\n%s\n",
        (unsigned long long)spec.seed, cfg.ncore, cfg.c_reg_com,
        std::string(policy::to_string(cfg.policy)).c_str(), cfg.policy_stride, cfg.policy_block,
        cfg.bus_bytes_per_transfer, cfg.bus_bytes_per_cycle, spec.scheduler.c_str(),
        failure->c_str());

    // Shrink: keep dropping instructions/edges while the same pipeline
    // (same scheduler, config, injection setting) fails with the same
    // failure signature.
    const ir::Loop loop = workloads::build_loop(fuzz_shape(spec.seed));
    const std::string sig = failure_signature(*failure);
    const ir::Loop shrunk = check::shrink_loop(loop, [&](const ir::Loop& candidate) {
      const auto f = run_one(candidate, mach, cfg, spec.scheduler, opt.iters, opt.inject_bug);
      return f.has_value() && failure_signature(*f) == sig;
    });
    const std::string path = opt.out_dir + "/tmsfuzz_" + std::to_string(spec.seed) + "_" +
                             spec.scheduler + ".loop";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write reproducer %s\n", path.c_str());
      continue;
    }
    out << "# tmsfuzz reproducer: seed " << spec.seed << ", scheduler " << spec.scheduler
        << ", ncore " << cfg.ncore << ", c_reg_com " << cfg.c_reg_com << ", policy "
        << policy::to_string(cfg.policy) << " (stride " << cfg.policy_stride << ", block "
        << cfg.policy_block << "), bus " << cfg.bus_bytes_per_transfer << "/"
        << cfg.bus_bytes_per_cycle << (opt.inject_bug ? ", injected off-by-one" : "") << "\n"
        << "# replay: tmsc <this file> --scheduler " << spec.scheduler << " --ncore "
        << cfg.ncore << " --policy " << policy::to_string(cfg.policy) << " --policy-stride "
        << cfg.policy_stride << " --policy-block " << cfg.policy_block << " --bus-bytes "
        << cfg.bus_bytes_per_transfer << " --bus-bandwidth " << cfg.bus_bytes_per_cycle
        << " --simulate " << opt.iters << "\n"
        << ir::serialise_loop(shrunk);
    std::printf("  shrunk %d -> %d instrs, %zu -> %zu deps; reproducer: %s\n",
                loop.num_instrs(), shrunk.num_instrs(), loop.deps().size(),
                shrunk.deps().size(), path.c_str());
    const auto shrunk_failure =
        run_one(shrunk, mach, cfg, spec.scheduler, opt.iters, opt.inject_bug);
    if (shrunk_failure.has_value()) {
      std::printf("  shrunk failure: %s\n", shrunk_failure->c_str());
    }
  }

  std::printf("tmsfuzz: %zu run(s) over %llu seed(s), %llu failure(s)%s\n", specs.size(),
              (unsigned long long)opt.seeds, (unsigned long long)failures,
              opt.inject_bug ? " [bug injection on]" : "");
  return failures == 0 ? 0 : 1;
}
