// loadgen — concurrency/QPS load generator for tmsd.
//
// Hammers a running tmsd with N client threads issuing a fixed request
// budget drawn round-robin from a workload (built-in kernel suite by
// default, or .loop files), retrying overload answers with the server's
// own retry_after_ms hint, and reporting latency percentiles.
//
// Every request carries a request id ("lg-<k>"); the server must echo
// it byte-for-byte on the matching response (ok or error), and any
// disagreement counts as an id mismatch and fails the run. Responses
// also carry the server's per-stage timings (queue wait, schedule,
// validate, total), so the report splits client-observed latency into
// network overhead vs server time, with server-side stage percentiles
// printed next to the client percentiles.
//
// With --verify, every response is checked against a locally computed
// schedule for the same (loop, scheduler, ncore): the schedulers are
// deterministic, so remote and local must agree exactly (II and every
// slot). This is the acceptance check behind tests/serve_smoke.sh.
//
// Usage:
//   loadgen --socket PATH [loop files...] [options]
//     --tcp HOST:PORT          connect over TCP instead of --socket
//     --clients N              concurrent client connections (default 8)
//     --requests N             total requests across all clients
//                                                           (default 200)
//     --qps N                  aggregate request rate cap (0 = unlimited)
//     --scheduler sms|ims|tms  (default tms)
//     --ncore N                (default 4)
//     --policy P               core-allocation policy carried in every
//                              request: modulo (default),
//                              round_robin_stride, locality, dep_distance
//     --policy-stride N        stride for round_robin_stride (default 1)
//     --policy-block N         block size for locality        (default 1)
//     --bus-bytes N            shared-bus bytes per register transfer
//                              (default 0 = contention term off)
//     --bus-bandwidth N        shared-bus bytes per cycle     (default 16)
//     --deadline-ms N          per-request deadline (0 = none)
//     --timeout-ms N           socket send/recv timeout (default 30000)
//     --max-retries N          overload retries per request (default 8)
//     --verify                 compare responses against local schedules
//     --expect-retry-after     require >=1 overload answer; with this
//                              flag, requests that exhaust their retries
//                              count as deferred, not failed
//     --expect-stats           issue STATS round trips mid-run and after
//                              the run; require they parse as canonical
//                              tmsd-stats-v1 JSON and that the final
//                              snapshot shows populated, internally
//                              consistent serve.latency.* histograms
//     --cluster N              instead of --socket/--tcp: bring up an
//                              in-process N-backend cluster (router::
//                              LocalCluster — N compile services behind
//                              a consistent-hash tmsrouter core) and
//                              drive its router socket; the report gains
//                              per-shard forwarding balance. With
//                              --expect-stats the probe goes to backend 0
//                              directly (the router's STATS schema is
//                              tmsrouter-stats-v1, not tmsd-stats-v1)
//     --json PATH              also write the report as one canonical
//                              JSON object (schema loadgen-report-v1);
//                              its `topology` field says "single" or
//                              "cluster:N"
//     --trace-out FILE         arm the in-process tracer for the run and
//                              write the Chrome trace-event JSON to FILE
//                              afterwards. Every request is sent with a
//                              minted trace id. Under --cluster the
//                              router core and all N backends live in
//                              this process, so the file is the stitched
//                              cluster trace: router.request spans with
//                              their router.forward legs parenting each
//                              backend's serve.* spans
//                              (docs/OBSERVABILITY.md)
//
// Exit status: 0 when every request succeeded (and the --expect flags
// held), 1 otherwise, 2 on usage errors.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ir/textio.hpp"
#include "machine/machine.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "router/cluster.hpp"
#include "sched/ims.hpp"
#include "sched/sms.hpp"
#include "sched/tms.hpp"
#include "serve/client.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "workloads/kernels.hpp"

using namespace tms;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp HOST:PORT | --cluster N) [loop files...]\n"
               "          [--clients N] [--requests N] [--qps N] [--scheduler sms|ims|tms]\n"
               "          [--ncore N] [--policy NAME] [--policy-stride N] [--policy-block N]\n"
               "          [--bus-bytes N] [--bus-bandwidth N]\n"
               "          [--deadline-ms N] [--timeout-ms N] [--max-retries N]\n"
               "          [--verify] [--expect-retry-after] [--expect-stats] [--json PATH]\n"
               "          [--trace-out FILE]\n",
               argv0);
  return 2;
}

struct Expected {
  int ii = 0;
  std::vector<int> slots;
};

struct Totals {
  std::uint64_t ok = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t overloads = 0;      ///< overload answers observed (pre-retry)
  std::uint64_t retries = 0;
  std::uint64_t deferred = 0;       ///< requests that exhausted their retries
  std::uint64_t failed = 0;         ///< transport errors + server errors
  std::uint64_t mismatches = 0;     ///< --verify disagreements
  std::uint64_t id_mismatches = 0;  ///< responses that did not echo our request_id
  std::vector<double> latencies_ms;
  // Server-reported stage timings (one entry per ok response, from the
  // final attempt), and the client-minus-server remainder: what the
  // network, framing, and client-side queueing cost on top.
  std::vector<double> queue_us;
  std::vector<double> schedule_us;
  std::vector<double> validate_us;
  std::vector<double> total_us;
  std::vector<double> overhead_ms;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Sorts in place and prints "  <label>: p50 .. p90 .. p99 .. max ..".
void print_quantiles(const char* label, std::vector<double>& v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end());
  std::printf("  %s: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n", label, percentile(v, 0.50),
              percentile(v, 0.90), percentile(v, 0.99), v.back());
}

/// Emits {"p50":..,"p90":..,"p99":..,"max":..} under `key`. Empty series
/// render as all-zero rather than being omitted, so the report shape is
/// stable for consumers.
void json_quantiles(support::JsonWriter& w, std::string_view key, std::vector<double>& sorted) {
  w.key(key).begin_object();
  w.member("p50", percentile(sorted, 0.50));
  w.member("p90", percentile(sorted, 0.90));
  w.member("p99", percentile(sorted, 0.99));
  w.member("max", sorted.empty() ? 0.0 : sorted.back());
  w.end_object();
}

/// One STATS round trip on a fresh connection. `require_traffic` adds
/// the end-of-run assertions: serve.requests counted, all four
/// serve.latency.* histograms populated with equal counts, and stage
/// sums consistent (queue + schedule + validate <= total). Returns a
/// failure description or nullopt.
std::optional<std::string> check_stats(const std::string& socket_path, const std::string& tcp,
                                       int timeout_ms, bool require_traffic) {
  serve::Client client;
  std::optional<std::string> cerr;
  if (!socket_path.empty()) {
    cerr = client.connect_unix(socket_path, timeout_ms);
  } else {
    const std::size_t colon = tcp.rfind(':');
    cerr = client.connect_tcp(tcp.substr(0, colon), std::atoi(tcp.c_str() + colon + 1),
                              timeout_ms);
  }
  if (cerr.has_value()) return "connect: " + *cerr;
  std::string payload;
  if (const auto err = client.stats(payload)) return "stats: " + *err;
  auto parsed = support::parse_json(payload);
  if (const auto* err = std::get_if<std::string>(&parsed)) {
    return "stats payload is not valid JSON: " + *err;
  }
  const auto& root = std::get<support::JsonValue>(parsed);
  const auto* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != "tmsd-stats-v1") {
    return std::string("stats payload lacks schema tmsd-stats-v1");
  }
  const auto* obs = root.find("observability");
  if (obs == nullptr || !obs->is_object()) return std::string("stats payload lacks observability");
  if (!require_traffic) return std::nullopt;

  const auto* counters = obs->find("counters");
  const auto* served = counters != nullptr ? counters->find("serve.requests") : nullptr;
  if (served == nullptr || !served->is_number() || served->as_number() <= 0) {
    return std::string("stats: serve.requests is not positive after the run");
  }
  const auto* th = obs->find("time_histograms");
  if (th == nullptr || !th->is_object()) return std::string("stats lacks time_histograms");
  const char* stages[] = {"serve.latency.queue_wait", "serve.latency.schedule",
                          "serve.latency.validate", "serve.latency.total"};
  double counts[4] = {0, 0, 0, 0};
  double sums[4] = {0, 0, 0, 0};
  for (int s = 0; s < 4; ++s) {
    const auto* hist = th->find(stages[s]);
    const auto* count = hist != nullptr ? hist->find("count") : nullptr;
    const auto* sum = hist != nullptr ? hist->find("sum_us") : nullptr;
    if (count == nullptr || !count->is_number() || sum == nullptr || !sum->is_number()) {
      return std::string("stats: missing histogram ") + stages[s];
    }
    counts[s] = count->as_number();
    sums[s] = sum->as_number();
  }
  if (counts[3] <= 0) return std::string("stats: serve.latency.total is empty after the run");
  if (counts[0] != counts[3] || counts[1] != counts[3] || counts[2] != counts[3]) {
    return std::string("stats: serve.latency.* histogram counts disagree");
  }
  if (sums[0] + sums[1] + sums[2] > sums[3]) {
    return std::string("stats: queue_wait + schedule + validate exceeds total");
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp;
  std::vector<std::string> files;
  int clients = 8;
  long long requests = 200;
  long long qps = 0;
  std::string scheduler = "tms";
  int ncore = 4;
  machine::AllocPolicy policy = machine::AllocPolicy::kModulo;
  int policy_stride = 1;
  int policy_block = 1;
  int bus_bytes = 0;
  int bus_bandwidth = 16;
  long long deadline_ms = 0;
  int timeout_ms = 30000;
  int max_retries = 8;
  bool verify = false;
  bool expect_retry_after = false;
  bool expect_stats = false;
  int cluster = 0;
  std::string json_path;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--tcp") {
      tcp = next("--tcp");
    } else if (a == "--clients") {
      clients = std::atoi(next("--clients"));
    } else if (a == "--requests") {
      requests = std::atoll(next("--requests"));
    } else if (a == "--qps") {
      qps = std::atoll(next("--qps"));
    } else if (a == "--scheduler") {
      scheduler = next("--scheduler");
    } else if (a == "--ncore") {
      ncore = std::atoi(next("--ncore"));
    } else if (a == "--policy") {
      const char* name = next("--policy");
      if (!policy::policy_from_string(name, policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n", name);
        return 2;
      }
    } else if (a == "--policy-stride") {
      policy_stride = std::atoi(next("--policy-stride"));
    } else if (a == "--policy-block") {
      policy_block = std::atoi(next("--policy-block"));
    } else if (a == "--bus-bytes") {
      bus_bytes = std::atoi(next("--bus-bytes"));
    } else if (a == "--bus-bandwidth") {
      bus_bandwidth = std::atoi(next("--bus-bandwidth"));
    } else if (a == "--deadline-ms") {
      deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (a == "--timeout-ms") {
      timeout_ms = std::atoi(next("--timeout-ms"));
    } else if (a == "--max-retries") {
      max_retries = std::atoi(next("--max-retries"));
    } else if (a == "--verify") {
      verify = true;
    } else if (a == "--expect-retry-after") {
      expect_retry_after = true;
    } else if (a == "--expect-stats") {
      expect_stats = true;
    } else if (a == "--cluster") {
      cluster = std::atoi(next("--cluster"));
      if (cluster < 1) {
        std::fprintf(stderr, "--cluster requires a positive backend count\n");
        return 2;
      }
    } else if (a == "--json") {
      json_path = next("--json");
    } else if (a == "--trace-out") {
      trace_out = next("--trace-out");
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }
  if (cluster > 0 ? !(socket_path.empty() && tcp.empty())
                  : socket_path.empty() == tcp.empty()) {
    std::fprintf(stderr, "exactly one of --socket / --tcp / --cluster is required\n");
    return usage(argv[0]);
  }
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr, "--clients and --requests must be positive\n");
    return 2;
  }

  std::vector<ir::Loop> loops;
  for (const std::string& f : files) {
    std::ifstream file(f);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", f.c_str());
      return 1;
    }
    auto parsed = ir::parse_loop(file);
    if (const auto* err = std::get_if<ir::ParseError>(&parsed)) {
      std::fprintf(stderr, "%s:%d: %s\n", f.c_str(), err->line, err->message.c_str());
      return 1;
    }
    loops.push_back(std::get<ir::Loop>(std::move(parsed)));
  }
  if (loops.empty()) {
    for (workloads::Kernel& k : workloads::classic_kernels()) {
      loops.push_back(std::move(k.loop));
    }
  }

  // --verify baseline: schedule every loop locally, once, up front. The
  // schedulers are deterministic, so this is what the server must echo.
  machine::MachineModel mach;
  machine::SpmtConfig cfg;
  cfg.ncore = ncore;
  cfg.policy = policy;
  cfg.policy_stride = policy_stride;
  cfg.policy_block = policy_block;
  cfg.bus_bytes_per_transfer = bus_bytes;
  cfg.bus_bytes_per_cycle = bus_bandwidth;
  std::vector<std::optional<Expected>> expected(loops.size());
  if (verify) {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      std::optional<sched::Schedule> s;
      if (scheduler == "sms") {
        if (auto r = sched::sms_schedule(loops[i], mach)) s.emplace(std::move(r->schedule));
      } else if (scheduler == "ims") {
        if (auto r = sched::ims_schedule(loops[i], mach)) s.emplace(std::move(r->schedule));
      } else {
        if (auto r = sched::tms_schedule(loops[i], mach, cfg)) s.emplace(std::move(r->schedule));
      }
      if (s.has_value()) {
        Expected e;
        e.ii = s->ii();
        for (int v = 0; v < loops[i].num_instrs(); ++v) e.slots.push_back(s->slot(v));
        expected[i] = std::move(e);
      }
    }
  }

  // --cluster: bring up the in-process N-shard topology; the worker
  // threads below then dial its router socket exactly as they would a
  // remote tmsrouter. STATS probes go to backend 0 directly — the
  // router's snapshot schema (tmsrouter-stats-v1) is not what
  // check_stats() asserts.
  // --trace-out: arm the process-wide tracer before anything can emit a
  // span. Under --cluster the router core and every backend service run
  // in this process, so one buffer captures the whole stitched path.
  if (!trace_out.empty()) obs::trace_enable();

  std::unique_ptr<router::LocalCluster> lc;
  char cluster_dir[] = "/tmp/loadgen-cluster-XXXXXX";
  if (cluster > 0) {
    if (::mkdtemp(cluster_dir) == nullptr) {
      std::fprintf(stderr, "loadgen: mkdtemp: %s\n", std::strerror(errno));
      return 1;
    }
    router::LocalClusterOptions copts;
    copts.backends = cluster;
    copts.dir = cluster_dir;
    lc = std::make_unique<router::LocalCluster>(mach, copts);
    if (const auto err = lc->start()) {
      std::fprintf(stderr, "loadgen: cluster: %s\n", err->c_str());
      return 1;
    }
    socket_path = lc->router_socket();
  }
  const std::string stats_socket = lc != nullptr ? lc->backend_socket(0) : socket_path;

  std::atomic<long long> next_request{0};
  std::mutex totals_mu;
  Totals totals;
  std::atomic<bool> connect_failed{false};
  const auto start = std::chrono::steady_clock::now();
  // Aggregate pacing: request k across the whole run is released at
  // k/qps seconds, whichever client draws it.
  const auto release_time = [&](long long k) {
    return start + std::chrono::microseconds(qps > 0 ? k * 1000000 / qps : 0);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      serve::Client client;
      const auto cerr = socket_path.empty()
                            ? [&] {
                                const std::size_t colon = tcp.rfind(':');
                                return client.connect_tcp(tcp.substr(0, colon),
                                                          std::atoi(tcp.c_str() + colon + 1),
                                                          timeout_ms);
                              }()
                            : client.connect_unix(socket_path, timeout_ms);
      if (cerr.has_value()) {
        std::fprintf(stderr, "loadgen: connect: %s\n", cerr->c_str());
        connect_failed.store(true, std::memory_order_release);
        return;
      }
      Totals local;
      for (;;) {
        const long long k = next_request.fetch_add(1, std::memory_order_relaxed);
        if (k >= requests) break;
        if (qps > 0) std::this_thread::sleep_until(release_time(k));
        const std::size_t li = static_cast<std::size_t>(k) % loops.size();
        serve::Request req;
        req.id = static_cast<std::uint64_t>(k) + 1;
        req.request_id = "lg-" + std::to_string(k + 1);
        req.scheduler = scheduler;
        req.ncore = ncore;
        req.deadline_ms = deadline_ms;
        req.policy = policy;
        req.policy_stride = policy_stride;
        req.policy_block = policy_block;
        req.bus_bytes_per_transfer = bus_bytes;
        req.bus_bytes_per_cycle = bus_bandwidth;
        req.loop = loops[li];
        // Traced runs act as the trace root: the server echoes this id
        // and its spans carry it, so the dump stitches per request.
        if (!trace_out.empty()) req.trace_id = obs::mint_id();

        const auto t0 = std::chrono::steady_clock::now();
        bool settled = false;
        for (int attempt = 0; attempt <= max_retries && !settled; ++attempt) {
          auto result = client.compile(req);
          if (const auto* err = std::get_if<std::string>(&result)) {
            std::fprintf(stderr, "loadgen: request %lld: %s\n", k, err->c_str());
            ++local.failed;
            settled = true;
            break;
          }
          const serve::Response& resp = std::get<serve::Response>(result);
          // Every response — ok or error — must echo our id exactly.
          if (resp.request_id != req.request_id) {
            std::fprintf(stderr, "loadgen: request %lld: request_id '%s' echoed as '%s'\n", k,
                         req.request_id.c_str(), resp.request_id.c_str());
            ++local.id_mismatches;
          }
          if (!resp.ok && resp.code == serve::ErrorCode::kOverload) {
            ++local.overloads;
            if (attempt == max_retries) {
              ++local.deferred;
              settled = true;
            } else {
              ++local.retries;
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(std::max<std::int64_t>(resp.retry_after_ms, 1)));
            }
            continue;
          }
          if (!resp.ok) {
            std::fprintf(stderr, "loadgen: request %lld: server error [%s]: %s\n", k,
                         std::string(serve::to_string(resp.code)).c_str(), resp.message.c_str());
            ++local.failed;
            settled = true;
            break;
          }
          ++local.ok;
          if (resp.cache_hit) ++local.cache_hits;
          if (verify) {
            const auto& exp = expected[li];
            if (!exp.has_value() || resp.ii != exp->ii || resp.slots != exp->slots) {
              std::fprintf(stderr, "loadgen: request %lld: schedule mismatch vs local %s\n", k,
                           scheduler.c_str());
              ++local.mismatches;
            }
          }
          const double client_ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
          local.latencies_ms.push_back(client_ms);
          local.queue_us.push_back(static_cast<double>(resp.t_queue_us));
          local.schedule_us.push_back(static_cast<double>(resp.t_schedule_us));
          local.validate_us.push_back(static_cast<double>(resp.t_validate_us));
          local.total_us.push_back(static_cast<double>(resp.t_total_us));
          local.overhead_ms.push_back(
              std::max(0.0, client_ms - static_cast<double>(resp.t_total_us) / 1000.0));
          settled = true;
        }
      }
      std::lock_guard<std::mutex> lock(totals_mu);
      totals.ok += local.ok;
      totals.cache_hits += local.cache_hits;
      totals.overloads += local.overloads;
      totals.retries += local.retries;
      totals.deferred += local.deferred;
      totals.failed += local.failed;
      totals.mismatches += local.mismatches;
      totals.id_mismatches += local.id_mismatches;
      totals.latencies_ms.insert(totals.latencies_ms.end(), local.latencies_ms.begin(),
                                 local.latencies_ms.end());
      totals.queue_us.insert(totals.queue_us.end(), local.queue_us.begin(), local.queue_us.end());
      totals.schedule_us.insert(totals.schedule_us.end(), local.schedule_us.begin(),
                                local.schedule_us.end());
      totals.validate_us.insert(totals.validate_us.end(), local.validate_us.begin(),
                                local.validate_us.end());
      totals.total_us.insert(totals.total_us.end(), local.total_us.begin(), local.total_us.end());
      totals.overhead_ms.insert(totals.overhead_ms.end(), local.overhead_ms.begin(),
                                local.overhead_ms.end());
    });
  }

  // The mid-run STATS probe: a separate connection, while the workers
  // are (very likely still) pushing requests. STATS is never queued, so
  // it must answer promptly even with the compile queue saturated.
  std::optional<std::string> stats_err;
  if (expect_stats) {
    stats_err = check_stats(stats_socket, tcp, timeout_ms, /*require_traffic=*/false);
  }
  for (std::thread& t : threads) t.join();
  if (expect_stats && !stats_err.has_value()) {
    stats_err = check_stats(stats_socket, tcp, timeout_ms, /*require_traffic=*/true);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();

  // Per-shard forwarding balance, snapshotted before teardown. The
  // ratio of the busiest to the emptiest shard is the headline number
  // (1.0 = perfectly even).
  std::vector<router::Router::BackendSnapshot> shards;
  if (lc != nullptr) {
    shards = lc->router().backends_snapshot();
    lc->stop();
  }

  // Trace dump after teardown so in-flight spans have closed.
  if (!trace_out.empty()) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write %s: %s\n", trace_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const std::string json = obs::trace_chrome_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("loadgen: wrote %zu trace event(s) to %s (%zu dropped)\n",
                obs::trace_event_count(), trace_out.c_str(), obs::trace_dropped());
  }

  std::sort(totals.latencies_ms.begin(), totals.latencies_ms.end());
  std::printf("loadgen: %lld request(s), %d client(s), %.1f ms wall (%.1f req/s)\n", requests,
              clients, wall_ms,
              wall_ms > 0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0.0);
  std::printf("  ok %llu (cache hits %llu), overload answers %llu, retries %llu, "
              "deferred %llu, failed %llu, mismatches %llu, id mismatches %llu\n",
              (unsigned long long)totals.ok, (unsigned long long)totals.cache_hits,
              (unsigned long long)totals.overloads, (unsigned long long)totals.retries,
              (unsigned long long)totals.deferred, (unsigned long long)totals.failed,
              (unsigned long long)totals.mismatches, (unsigned long long)totals.id_mismatches);
  if (!totals.latencies_ms.empty()) {
    std::printf("  client latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
                percentile(totals.latencies_ms, 0.50), percentile(totals.latencies_ms, 0.90),
                percentile(totals.latencies_ms, 0.99), totals.latencies_ms.back());
  }
  // Server-side stage percentiles from the echoed timings, then the
  // client-minus-server remainder: together they answer "is tail
  // latency the network, the queue, or the compute?"
  print_quantiles("server queue_wait us", totals.queue_us);
  print_quantiles("server schedule us", totals.schedule_us);
  print_quantiles("server validate us", totals.validate_us);
  print_quantiles("server total us", totals.total_us);
  print_quantiles("network overhead ms", totals.overhead_ms);
  if (!shards.empty()) {
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const auto& s : shards) {
      lo = std::min(lo, s.forwarded);
      hi = std::max(hi, s.forwarded);
    }
    std::printf("  cluster: %zu backend(s), shard balance max/min %.2f\n", shards.size(),
                lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo)
                       : static_cast<double>(hi));
    for (const auto& s : shards) {
      std::printf("    %s: %s, %llu forwarded, %llu transport error(s)\n", s.address.c_str(),
                  s.healthy ? "healthy" : "ejected", (unsigned long long)s.forwarded,
                  (unsigned long long)s.transport_errors);
    }
  }

  if (!json_path.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.member("schema", "loadgen-report-v1");
    w.member("topology",
             cluster > 0 ? "cluster:" + std::to_string(cluster) : std::string("single"));
    w.member("requests", static_cast<std::int64_t>(requests));
    w.member("clients", clients);
    w.member("wall_ms", wall_ms);
    w.member("req_per_s", wall_ms > 0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0.0);
    w.member("ok", totals.ok);
    w.member("cache_hits", totals.cache_hits);
    w.member("overloads", totals.overloads);
    w.member("retries", totals.retries);
    w.member("deferred", totals.deferred);
    w.member("failed", totals.failed);
    w.member("mismatches", totals.mismatches);
    w.member("id_mismatches", totals.id_mismatches);
    json_quantiles(w, "client_latency_ms", totals.latencies_ms);
    w.key("server_stage_us").begin_object();
    json_quantiles(w, "queue_wait", totals.queue_us);
    json_quantiles(w, "schedule", totals.schedule_us);
    json_quantiles(w, "validate", totals.validate_us);
    json_quantiles(w, "total", totals.total_us);
    w.end_object();
    json_quantiles(w, "network_overhead_ms", totals.overhead_ms);
    if (!shards.empty()) {
      w.key("shards").begin_array();
      for (const auto& s : shards) {
        w.begin_object();
        w.member("address", s.address);
        w.member("healthy", s.healthy);
        w.member("forwarded", s.forwarded);
        w.member("transport_errors", s.transport_errors);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write %s: %s\n", json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }

  bool ok = !connect_failed.load(std::memory_order_acquire) && totals.failed == 0 &&
            totals.mismatches == 0 && totals.id_mismatches == 0;
  if (expect_retry_after && totals.overloads == 0) {
    std::fprintf(stderr, "loadgen: --expect-retry-after, but no overload answer was observed\n");
    ok = false;
  }
  if (!expect_retry_after && totals.deferred > 0) {
    std::fprintf(stderr, "loadgen: %llu request(s) exhausted their retries\n",
                 (unsigned long long)totals.deferred);
    ok = false;
  }
  if (expect_stats && stats_err.has_value()) {
    std::fprintf(stderr, "loadgen: --expect-stats failed: %s\n", stats_err->c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
